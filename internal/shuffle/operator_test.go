package shuffle

import (
	"testing"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

type testRig struct {
	sim   *des.Sim
	store *objectstore.Service
	pf    *faas.Platform
	op    *Operator
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	sim := des.New(1)
	store, err := objectstore.New(sim, objectstore.Config{
		RequestLatency:     time.Millisecond,
		PerConnBandwidth:   1e9,
		AggregateBandwidth: 0,
		ReadOpsPerSec:      1e6,
		WriteOpsPerSec:     1e6,
		OpsBurst:           1e6,
	})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	pf, err := faas.New(sim, store, faas.Config{
		ColdStart:          100 * time.Millisecond,
		WarmStart:          5 * time.Millisecond,
		KeepAlive:          10 * time.Minute,
		MemoryMB:           2048,
		BaselineMemoryMB:   2048,
		ConcurrencyLimit:   500,
		BillingGranularity: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	op, err := NewOperator(pf, store)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	return &testRig{sim: sim, store: store, pf: pf, op: op}
}

// loadInput stores records as one TSV object and returns them.
func (rig *testRig) loadInput(t *testing.T, p *des.Proc, recs []bed.Record) {
	t.Helper()
	c := objectstore.NewClient(rig.store)
	if err := c.CreateBucket(p, "in"); err != nil {
		t.Fatalf("bucket in: %v", err)
	}
	if err := c.CreateBucket(p, "out"); err != nil {
		t.Fatalf("bucket out: %v", err)
	}
	if err := c.Put(p, "in", "data.bed", payload.RealNoCopy(bed.Marshal(recs))); err != nil {
		t.Fatalf("put input: %v", err)
	}
}

// fetchSorted reads back all output parts in order and parses them.
func (rig *testRig) fetchSorted(t *testing.T, p *des.Proc, keys []string) []bed.Record {
	t.Helper()
	c := objectstore.NewClient(rig.store)
	var all []bed.Record
	for _, k := range keys {
		pl, err := c.Get(p, "out", k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		raw, ok := pl.Bytes()
		if !ok {
			t.Fatalf("output %s is not real", k)
		}
		recs, err := bed.Unmarshal(raw)
		if err != nil {
			t.Fatalf("parse %s: %v", k, err)
		}
		all = append(all, recs...)
	}
	return all
}

func recordMultiset(recs []bed.Record) map[bed.Record]int {
	m := make(map[bed.Record]int, len(recs))
	for _, r := range recs {
		m[r]++
	}
	return m
}

func sortSpec(workers int) Spec {
	return Spec{
		InputBucket: "in", InputKey: "data.bed",
		OutputBucket: "out", OutputPrefix: "sorted/",
		Workers: workers,
	}
}

func runSort(t *testing.T, rig *testRig, recs []bed.Record, spec Spec) (Result, []bed.Record) {
	t.Helper()
	var res Result
	var sorted []bed.Record
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, sortErr = rig.op.Sort(p, spec)
		if sortErr != nil {
			return
		}
		sorted = rig.fetchSorted(t, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("Sort: %v", sortErr)
	}
	return res, sorted
}

func TestSortProducesGlobalOrder(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 5000, Seed: 1, Sorted: false})
	res, sorted := runSort(t, rig, recs, sortSpec(8))
	if res.Workers != 8 {
		t.Fatalf("workers = %d, want 8", res.Workers)
	}
	if len(res.OutputKeys) != 8 {
		t.Fatalf("output parts = %d, want 8", len(res.OutputKeys))
	}
	if len(sorted) != len(recs) {
		t.Fatalf("sorted count = %d, want %d", len(sorted), len(recs))
	}
	if !bed.IsSorted(sorted) {
		t.Fatal("concatenated output parts are not globally sorted")
	}
}

func TestSortPreservesRecords(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 2, Sorted: false})
	_, sorted := runSort(t, rig, recs, sortSpec(5))
	want := recordMultiset(recs)
	got := recordMultiset(sorted)
	if len(want) != len(got) {
		t.Fatalf("distinct records: got %d, want %d", len(got), len(want))
	}
	for r, n := range want {
		if got[r] != n {
			t.Fatalf("record %+v count = %d, want %d", r, got[r], n)
		}
	}
}

func TestSortSingleWorker(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 500, Seed: 3, Sorted: false})
	res, sorted := runSort(t, rig, recs, sortSpec(1))
	if len(res.OutputKeys) != 1 {
		t.Fatalf("parts = %d, want 1", len(res.OutputKeys))
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("single-worker sort incorrect")
	}
}

func TestSortMoreWorkersThanRecords(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 5, Seed: 4, Sorted: false})
	_, sorted := runSort(t, rig, recs, sortSpec(16))
	if len(sorted) != 5 {
		t.Fatalf("sorted count = %d, want 5", len(sorted))
	}
	if !bed.IsSorted(sorted) {
		t.Fatal("not sorted")
	}
}

func TestSortAlreadySortedInput(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 2000, Seed: 5, Sorted: true})
	_, sorted := runSort(t, rig, recs, sortSpec(4))
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("sorted input mishandled")
	}
}

func TestSortAutoPlan(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 6, Sorted: false})
	spec := sortSpec(0) // planner chooses
	spec.MaxWorkers = 32
	spec.WorkerMemBytes = 2 << 30
	res, sorted := runSort(t, rig, recs, spec)
	if !res.AutoPlanned {
		t.Fatal("AutoPlanned = false")
	}
	if res.Workers < 1 || res.Workers > 32 {
		t.Fatalf("planned workers = %d", res.Workers)
	}
	if res.Planned.Predicted <= 0 {
		t.Fatal("plan has no prediction")
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("auto-planned sort incorrect")
	}
}

func TestSortSizedPayloadTimingOnly(t *testing.T) {
	rig := newRig(t)
	var res Result
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		if err := c.Put(p, "in", "data.bed", payload.Sized(3500e6)); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		res, sortErr = rig.op.Sort(p, sortSpec(8))
		if sortErr != nil {
			return
		}
		// Outputs must exist and sum to the input size.
		var total int64
		for _, k := range res.OutputKeys {
			obj, err := c.Head(p, "out", k)
			if err != nil {
				t.Errorf("head %s: %v", k, err)
				return
			}
			total += obj.Size
		}
		if total != 3500e6 {
			t.Errorf("output bytes = %d, want 3.5e9", total)
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("Sort: %v", sortErr)
	}
	if res.Phase1 <= 0 || res.Phase2 <= 0 {
		t.Fatalf("phases not timed: %+v", res)
	}
}

func TestSortEmptyInputFails(t *testing.T) {
	rig := newRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		_ = c.Put(p, "in", "data.bed", payload.Real(nil))
		_, sortErr = rig.op.Sort(p, sortSpec(4))
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSortMissingInputFails(t *testing.T) {
	rig := newRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		_, sortErr = rig.op.Sort(p, sortSpec(4))
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSortSpecValidation(t *testing.T) {
	rig := newRig(t)
	bad := []Spec{
		{OutputBucket: "out"},
		{InputBucket: "in", InputKey: "k"},
		{InputBucket: "in", InputKey: "k", OutputBucket: "out", Workers: -1},
	}
	for i, spec := range bad {
		var sortErr error
		s := spec
		rig.sim.Spawn("driver", func(p *des.Proc) {
			_, sortErr = rig.op.Sort(p, s)
		})
		if err := rig.sim.Run(); err != nil {
			t.Fatalf("sim: %v", err)
		}
		if sortErr == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestSortResultTimings(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 2000, Seed: 7, Sorted: false})
	res, _ := runSort(t, rig, recs, sortSpec(4))
	if res.Sample <= 0 {
		t.Fatalf("Sample duration = %v, want > 0", res.Sample)
	}
	if res.Phase1 <= 0 || res.Phase2 <= 0 {
		t.Fatalf("phase timings = %v / %v", res.Phase1, res.Phase2)
	}
	if res.TotalBytes <= 0 {
		t.Fatal("TotalBytes not set")
	}
}

func TestPartitionIndex(t *testing.T) {
	boundAt := func(start int64) Boundary {
		return Boundary{Key: bed.KeyOf(bed.Record{Chrom: "chr1", Start: start, End: start + 1}), Name: "chr1"}
	}
	keyAt := func(start int64) bed.Key {
		return bed.KeyOf(bed.Record{Chrom: "chr1", Start: start, End: start + 1})
	}
	bounds := []Boundary{boundAt(20), boundAt(40), boundAt(60)}
	cases := map[int64]int{
		10: 0, 20: 1, 30: 1, 40: 2, 50: 2, 60: 3, 99: 3,
	}
	for start, want := range cases {
		if got := partitionIndex(keyAt(start), "chr1", bounds); got != want {
			t.Errorf("partitionIndex(start=%d) = %d, want %d", start, got, want)
		}
	}
	if got := partitionIndex(keyAt(5), "chr1", nil); got != 0 {
		t.Errorf("nil boundaries partition = %d, want 0", got)
	}
	// A key equal to a boundary except in End still routes right of it
	// only when it is strictly greater (End is part of the key).
	onBoundary := bed.KeyOf(bed.Record{Chrom: "chr1", Start: 20, End: 21})
	past := bed.KeyOf(bed.Record{Chrom: "chr1", Start: 20, End: 22})
	before := bed.KeyOf(bed.Record{Chrom: "chr1", Start: 20, End: 20})
	if got := partitionIndex(onBoundary, "chr1", bounds); got != 1 {
		t.Errorf("boundary key partition = %d, want 1", got)
	}
	if got := partitionIndex(past, "chr1", bounds); got != 1 {
		t.Errorf("past-boundary key partition = %d, want 1", got)
	}
	if got := partitionIndex(before, "chr1", bounds); got != 0 {
		t.Errorf("pre-boundary key partition = %d, want 0", got)
	}
	// Beyond-table scaffolds colliding in the key's 8-byte prefix are
	// routed by full name: a boundary on the lexically-later scaffold
	// keeps an earlier-name/later-start record left of it.
	scafBound := Boundary{
		Key:  bed.KeyOf(bed.Record{Chrom: "chrUn_KI270303v1", Start: 50, End: 51}),
		Name: "chrUn_KI270303v1",
	}
	earlierName := bed.KeyOf(bed.Record{Chrom: "chrUn_KI270302v1", Start: 5000, End: 5001})
	if got := partitionIndex(earlierName, "chrUn_KI270302v1", []Boundary{scafBound}); got != 0 {
		t.Errorf("earlier scaffold routed to %d, want 0 (name must trump start)", got)
	}
}

func TestSplitRanges(t *testing.T) {
	ranges := splitRanges(10, 3)
	if len(ranges) != 3 {
		t.Fatalf("ranges = %d", len(ranges))
	}
	var total int64
	prevEnd := int64(0)
	for _, r := range ranges {
		if r.off != prevEnd {
			t.Fatalf("gap at %d", r.off)
		}
		prevEnd = r.off + r.n
		total += r.n
	}
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if ranges[0].n != 4 || ranges[1].n != 3 || ranges[2].n != 3 {
		t.Fatalf("ranges = %+v, want 4/3/3", ranges)
	}
}

// TestConcurrentSortsGetDistinctJobIDs: one operator shared by
// concurrently running jobs (a session rig's Submit pattern) must
// allocate distinct job IDs — otherwise their scratch keys collide and
// records leak across jobs. Job-ID allocation is atomic; the jobs here
// run interleaved in one sim and both must come out complete and
// sorted.
func TestConcurrentSortsGetDistinctJobIDs(t *testing.T) {
	rig := newRig(t)
	recsA := bed.Generate(bed.GenConfig{Records: 1200, Seed: 91, Sorted: false})
	recsB := bed.Generate(bed.GenConfig{Records: 900, Seed: 92, Sorted: false})
	var sortedA, sortedB []bed.Record
	var errA, errB error
	rig.sim.Spawn("setup", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		_ = c.Put(p, "in", "a.bed", payload.RealNoCopy(bed.Marshal(recsA)))
		_ = c.Put(p, "in", "b.bed", payload.RealNoCopy(bed.Marshal(recsB)))
	})
	rig.sim.Spawn("driver-a", func(p *des.Proc) {
		p.Sleep(50 * time.Millisecond) // let setup's Puts land
		spec := sortSpec(4)
		spec.InputKey = "a.bed"
		spec.OutputPrefix = "sorted/a/"
		var res Result
		if res, errA = rig.op.Sort(p, spec); errA == nil {
			sortedA = rig.fetchSorted(t, p, res.OutputKeys)
		}
	})
	rig.sim.Spawn("driver-b", func(p *des.Proc) {
		p.Sleep(50 * time.Millisecond)
		spec := sortSpec(4)
		spec.InputKey = "b.bed"
		spec.OutputPrefix = "sorted/b/"
		var res Result
		if res, errB = rig.op.Sort(p, spec); errB == nil {
			sortedB = rig.fetchSorted(t, p, res.OutputKeys)
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if errA != nil || errB != nil {
		t.Fatalf("concurrent sorts failed: %v / %v", errA, errB)
	}
	if len(sortedA) != len(recsA) || !bed.IsSorted(sortedA) {
		t.Fatalf("job A corrupted by concurrent job: %d records", len(sortedA))
	}
	if len(sortedB) != len(recsB) || !bed.IsSorted(sortedB) {
		t.Fatalf("job B corrupted by concurrent job: %d records", len(sortedB))
	}
}

func TestDuplicateOperatorRegistrationFails(t *testing.T) {
	rig := newRig(t)
	if _, err := NewOperator(rig.pf, rig.store); err == nil {
		t.Fatal("second operator on one platform accepted")
	}
}
