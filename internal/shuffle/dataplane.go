package shuffle

// The shuffle's binary-key data plane: mappers route records into
// per-reducer partitions keyed by bed.Key, sort each partition into a
// sorted run before it is written (the sorted-run invariant on scratch
// objects), and reducers stream a k-way merge over the runs instead of
// concatenating, re-parsing, and full-sorting them. TSV bytes flow
// through the merge verbatim — only the three key columns of each line
// are ever parsed on the reduce side.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/faaspipe/faaspipe/internal/bed"
)

// The data plane recycles its per-partition scratch across activations
// instead of leaving it to the GC: partition byte buffers, lineRef
// indexes, and the radix sort's KeyRef scratch all cycle through these
// pools. Only scratch whose lifetime ends inside finish() is pooled —
// run buffers that escape into payloads never are.

// slicePool recycles capacity-bearing slices through boxed pointers:
// the *[]T box travels with its slice, so neither get nor put
// allocates in steady state (a Put of the bare slice header would box
// it on every call).
type slicePool[T any] struct{ p sync.Pool }

func (s *slicePool[T]) get(capHint int) *[]T {
	if v := s.p.Get(); v != nil {
		b := v.(*[]T)
		if cap(*b) < capHint {
			// A recycled slice below the hint would regrow through
			// append doublings — the cost sizeHint exists to avoid;
			// keep the box, replace the array.
			*b = make([]T, 0, capHint)
		}
		return b
	}
	sl := make([]T, 0, capHint)
	return &sl
}

func (s *slicePool[T]) put(b *[]T) {
	*b = (*b)[:0]
	s.p.Put(b)
}

var (
	partBufPool slicePool[byte]
	lineRefPool slicePool[lineRef]
	keyRefPool  slicePool[bed.KeyRef]
)

// Boundary is one partition boundary: a binary key plus the full
// chromosome name behind the key's packed prefix, so that routing
// stays exact (monotone in genome order) even for beyond-table
// scaffold names that collide in the prefix.
type Boundary struct {
	Key  bed.Key
	Name string
}

// partitionIndex returns the partition for a (key, chrom-name) pair
// given sorted boundaries: index i such that boundaries[i-1] <= key <
// boundaries[i], with keys equal to a boundary routed right — the
// binary-search equivalent of the legacy string search on key+"\x00".
func partitionIndex[T bed.ChromName](key bed.Key, name T, boundaries []Boundary) int {
	return sort.Search(len(boundaries), func(i int) bool {
		return bed.CompareKeyName(boundaries[i].Key, boundaries[i].Name, key, name) > 0
	})
}

// chromOf returns the first column of an encoded TSV line.
func chromOf(line []byte) []byte {
	if i := bytes.IndexByte(line, '\t'); i >= 0 {
		return line[:i]
	}
	return line
}

// compareLineKeys orders (key, encoded-line) pairs in exact genome
// order: the full chromosome column breaks (rank, name-prefix) ties
// for beyond-table names, lazily — the column is only sliced out on
// the rare tie-with-packed-name path.
func compareLineKeys(ak bed.Key, aLine []byte, bk bed.Key, bLine []byte) int {
	if ak.Rank == bk.Rank && ak.Prefix == bk.Prefix && ak.NamePacked() {
		if c := bytes.Compare(chromOf(aLine), chromOf(bLine)); c != 0 {
			return c
		}
	}
	return bed.CompareKey(ak, bk)
}

// lineRef locates one encoded record inside a partition buffer.
// 32-bit offsets bound a single partition buffer at 2 GiB — far above
// any per-worker slice the planner's memory model admits; place()
// rejects a partition that would cross it.
type lineRef struct {
	key      bed.Key
	off, len int32
}

// runPart accumulates one reducer's partition: encoded lines plus a
// key index over them. bufBox/refsBox are the pool boxes backing the
// slices when grow drew them from the pools (nil for caller-owned
// memory, e.g. in tests); recycle returns them.
type runPart struct {
	buf     []byte
	refs    []lineRef
	bufBox  *[]byte
	refsBox *[]lineRef
}

// runBuilder routes records into per-reducer partitions and finishes
// each as a sorted run. It never materializes a []bed.Record: lines
// are encoded (or copied) straight into partition buffers, and sorting
// permutes the compact lineRef index, not records.
type runBuilder struct {
	bounds  []Boundary
	parts   []runPart
	partCap int // per-partition first-allocation size; 0 grows organically
}

func newRunBuilder(workers int, bounds []Boundary) *runBuilder {
	return &runBuilder{bounds: bounds, parts: make([]runPart, workers)}
}

// sizeHint pre-sizes each partition's buffers for an expected total
// input volume (+25% headroom for boundary skew), sparing the append
// path its regrowth copies.
func (b *runBuilder) sizeHint(totalBytes int) {
	if totalBytes > 0 && len(b.parts) > 0 {
		per := totalBytes / len(b.parts)
		b.partCap = per + per/4
	}
}

func (b *runBuilder) place(key bed.Key, off int, p *runPart) error {
	if len(p.buf) > 1<<31-1 {
		// lineRef's int32 offsets would wrap; fail loudly instead of
		// corrupting the run index.
		return errPartitionTooLarge
	}
	p.refs = append(p.refs, lineRef{key: key, off: int32(off), len: int32(len(p.buf) - off)})
	return nil
}

// grow readies a partition's buffers on first touch, recycling pooled
// scratch before allocating fresh.
func (b *runBuilder) grow(p *runPart) {
	if p.bufBox == nil {
		p.bufBox = partBufPool.get(b.partCap)
		p.buf = *p.bufBox
	}
	if p.refsBox == nil {
		p.refsBox = lineRefPool.get(b.partCap / 32) // bedMethyl lines run ~48 bytes
		p.refs = *p.refsBox
	}
}

// Add parses one raw input line, validates and normalizes it, and
// routes it to its partition.
func (b *runBuilder) Add(line []byte) error {
	rec, err := bed.ParseLine(line)
	if err != nil {
		return err
	}
	key := bed.KeyOf(rec)
	p := &b.parts[partitionIndex(key, rec.Chrom, b.bounds)]
	b.grow(p)
	off := len(p.buf)
	p.buf = bed.AppendTSV(p.buf, rec)
	return b.place(key, off, p)
}

// Finish sorts every partition into a sorted run and returns the run
// buffers, one per reducer (nil for empty partitions).
func (b *runBuilder) Finish() [][]byte {
	out := make([][]byte, len(b.parts))
	for i := range b.parts {
		out[i] = b.parts[i].finish()
	}
	return out
}

func (p *runPart) finish() []byte {
	sorted := true
	for i := 1; i < len(p.refs); i++ {
		a, b := p.refs[i-1], p.refs[i]
		if compareLineKeys(a.key, p.line(a), b.key, p.line(b)) > 0 {
			sorted = false
			break
		}
	}
	if sorted { // already a run (common for pre-sorted input): no copy
		out := p.buf
		if p.bufBox != nil && cap(out) > len(out)+len(out)/2 && cap(out)-len(out) > 64<<10 {
			// A recycled buffer can be arbitrarily larger than the run
			// it now carries (a small job after a large one); copy out
			// rather than let the escaping payload pin the whole pooled
			// backing array, and recycle the big buffer.
			out = append(make([]byte, 0, len(out)), out...)
			p.recycle(true)
		} else {
			p.recycle(false)
		}
		return out
	}
	// MSD radix sort over the packed key bytes: permute a KeyRef view
	// of the index, then copy the lines out in key order. Idx is the
	// append position, so the tie-break reproduces the byte order a
	// stable comparison sort over input order would emit.
	krsBox := keyRefPool.get(len(p.refs))
	krs := (*krsBox)[:len(p.refs)] // get guarantees the capacity
	for i, r := range p.refs {
		krs[i] = bed.KeyRef{Key: r.key, Idx: int32(i)}
	}
	bed.RadixSort(krs, func(a, b bed.KeyRef) int {
		ra, rb := p.refs[a.Idx], p.refs[b.Idx]
		if c := compareLineKeys(a.Key, p.line(ra), b.Key, p.line(rb)); c != 0 {
			return c
		}
		return int(a.Idx) - int(b.Idx)
	})
	dst := make([]byte, 0, len(p.buf))
	for _, kr := range krs {
		ref := p.refs[kr.Idx]
		dst = append(dst, p.buf[ref.off:ref.off+ref.len]...)
	}
	*krsBox = krs
	keyRefPool.put(krsBox)
	p.recycle(true)
	return dst
}

// recycle returns the partition's pooled scratch; withBuf is set when
// the byte buffer did not escape as the returned run (a buffer that
// did escape keeps its memory and its box is simply dropped).
func (p *runPart) recycle(withBuf bool) {
	if p.refsBox != nil {
		*p.refsBox = p.refs
		lineRefPool.put(p.refsBox)
	}
	if withBuf && p.bufBox != nil {
		*p.bufBox = p.buf
		partBufPool.put(p.bufBox)
	}
	p.buf, p.refs, p.bufBox, p.refsBox = nil, nil, nil, nil
}

// line slices a ref's encoded line out of the partition buffer.
func (p *runPart) line(r lineRef) []byte {
	return p.buf[r.off : r.off+r.len]
}

// forEachLine calls fn for every non-blank line of raw.
func forEachLine(raw []byte, fn func(line []byte) error) error {
	for len(raw) > 0 {
		var line []byte
		if nl := bytes.IndexByte(raw, '\n'); nl < 0 {
			line, raw = raw, nil
		} else {
			line, raw = raw[:nl], raw[nl+1:]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}

// runCursor walks one sorted run line by line during a merge.
type runCursor struct {
	data []byte  // unconsumed bytes
	line []byte  // current line, without newline
	key  bed.Key // current line's sort key
	idx  int     // run index, the deterministic tie-break
	live bool    // a current line is loaded
}

// advance loads the cursor's next non-blank line, verifying the run
// stays sorted (the mappers' invariant — a violation here means a
// corrupted scratch object, and silently merging it would emit
// unsorted output).
func (c *runCursor) advance() error {
	prevKey, prevLine, hadPrev := c.key, c.line, c.live
	c.live = false
	for len(c.data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(c.data, '\n'); nl < 0 {
			line, c.data = c.data, nil
		} else {
			line, c.data = c.data[:nl], c.data[nl+1:]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		key, err := bed.KeyOfLine(line)
		if err != nil {
			return fmt.Errorf("run %d: %w", c.idx, err)
		}
		if hadPrev && compareLineKeys(key, line, prevKey, prevLine) < 0 {
			return fmt.Errorf("run %d is not sorted", c.idx)
		}
		c.line, c.key, c.live = line, key, true
		return nil
	}
	return nil
}

// cursorLess orders heap entries in exact genome order, then run index
// for deterministic merges.
func cursorLess(a, b *runCursor) bool {
	if c := compareLineKeys(a.key, a.line, b.key, b.line); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// openRuns builds a cursor min-heap over the runs, returning the heap
// and the total input size. Exhausted-on-arrival runs (empty or
// blank-only) never enter the heap.
func openRuns(runs [][]byte) ([]*runCursor, int, error) {
	total := 0
	cursors := make([]runCursor, len(runs))
	h := make([]*runCursor, 0, len(runs))
	for i, run := range runs {
		total += len(run)
		c := &cursors[i]
		c.data, c.idx = run, i
		if err := c.advance(); err != nil {
			return nil, 0, err
		}
		if c.live {
			h = append(h, c)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	return h, total, nil
}

// mergeRuns streams k sorted runs into one globally sorted TSV buffer
// via a binary min-heap of per-run cursors, copying each winning line
// verbatim into the output. Peak memory is the runs plus one output
// buffer — no []bed.Record, no re-serialization, no full re-sort.
func mergeRuns(runs [][]byte) ([]byte, error) {
	h, total, err := openRuns(runs)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, total)
	for len(h) > 0 {
		c := h[0]
		out = append(out, c.line...)
		out = append(out, '\n')
		if err := c.advance(); err != nil {
			return nil, err
		}
		if !c.live {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	return out, nil
}

// mergeSplit streams the same k-way cursor merge, but routes each
// winning line to its boundary partition instead of one output: the
// hierarchical round-2 repartitioner's body. Because the merge emits
// lines in globally ascending key order, every partition is a sorted
// run by construction — no per-partition sort ever runs — and the
// routing cursor only moves right, so boundary search is O(1)
// amortized instead of a binary search per line. Partitions that
// receive nothing stay nil, matching runBuilder.Finish.
func mergeSplit(runs [][]byte, workers int, bounds []Boundary) ([][]byte, error) {
	h, total, err := openRuns(runs)
	if err != nil {
		return nil, err
	}
	parts := make([][]byte, workers)
	hint := 0
	if workers > 0 {
		hint = total/workers + total/(4*workers) // +25% for boundary skew
	}
	cur := 0
	for len(h) > 0 {
		c := h[0]
		// Advance past every boundary <= the emitted key (keys equal to
		// a boundary route right, as in partitionIndex).
		for cur < len(bounds) &&
			bed.CompareKeyName(bounds[cur].Key, bounds[cur].Name, c.key, chromOf(c.line)) <= 0 {
			cur++
		}
		if parts[cur] == nil {
			parts[cur] = make([]byte, 0, hint)
		}
		parts[cur] = append(parts[cur], c.line...)
		parts[cur] = append(parts[cur], '\n')
		if err := c.advance(); err != nil {
			return nil, err
		}
		if !c.live {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	return parts, nil
}

func siftDown(h []*runCursor, i int) { siftDownFunc(h, i, cursorLess) }

// siftDownFunc restores the min-heap property below i for any cursor
// type; shared by the buffered and chunk-fed merges.
func siftDownFunc[T any](h []T, i int, less func(a, b T) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

var (
	errNoLineStart       = errors.New("no line start in slice")
	errPartitionTooLarge = errors.New("partition exceeds the 2 GiB run-index bound")
)

// appendIndex4 appends n zero-padded to four digits (the %04d the
// data plane's key formats use). Indices past 9999 widen to 8 (then
// 19) zero-padded digits behind a prefix letter that sorts after every
// digit byte, so generated names keep sorting in index order
// lexicographically — SortHierarchical's sort.Strings(OutputKeys)
// relies on that — where growing digit count like fmt's %04d does
// would interleave ("part-10000" < "part-9999" in byte order).
func appendIndex4(b []byte, n int) []byte {
	switch {
	case n < 0:
		// Indices are never negative; keep fmt's rendering if a bug
		// ever produces one.
		return strconv.AppendInt(b, int64(n), 10)
	case n <= 9999:
		return append(b,
			byte('0'+n/1000), byte('0'+n/100%10), byte('0'+n/10%10), byte('0'+n%10))
	case n <= 99999999:
		b = append(b, 'x')
		for shift := 10000000; shift > 0; shift /= 10 {
			b = append(b, byte('0'+n/shift%10))
		}
		return b
	default:
		b = append(b, 'y')
		for shift := int64(1000000000000000000); shift > 0; shift /= 10 {
			b = append(b, byte('0'+int64(n)/shift%10))
		}
		return b
	}
}

// partKey names the intermediate object mapper m writes for reducer r.
// Append-based: it runs workers^2 times per job, so the fmt.Sprintf it
// replaces was a measurable constant cost.
func partKey(jobID string, m, r int) string {
	b := make([]byte, 0, len(jobID)+len("/m0000_r0000"))
	b = append(b, jobID...)
	b = append(b, '/', 'm')
	b = appendIndex4(b, m)
	b = append(b, '_', 'r')
	b = appendIndex4(b, r)
	return string(b)
}

// outputKey names reducer idx's globally-ordered output part.
func outputKey(prefix string, idx int) string {
	b := make([]byte, 0, len(prefix)+len("part-0000"))
	b = append(b, prefix...)
	b = append(b, "part-"...)
	b = appendIndex4(b, idx)
	return string(b)
}
