package shuffle

// The shuffle's binary-key data plane: mappers route records into
// per-reducer partitions keyed by bed.Key, sort each partition into a
// sorted run before it is written (the sorted-run invariant on scratch
// objects), and reducers stream a k-way merge over the runs instead of
// concatenating, re-parsing, and full-sorting them. TSV bytes flow
// through the merge verbatim — only the three key columns of each line
// are ever parsed on the reduce side.

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"

	"github.com/faaspipe/faaspipe/internal/bed"
)

// Boundary is one partition boundary: a binary key plus the full
// chromosome name behind the key's packed prefix, so that routing
// stays exact (monotone in genome order) even for beyond-table
// scaffold names that collide in the prefix.
type Boundary struct {
	Key  bed.Key
	Name string
}

// partitionIndex returns the partition for a (key, chrom-name) pair
// given sorted boundaries: index i such that boundaries[i-1] <= key <
// boundaries[i], with keys equal to a boundary routed right — the
// binary-search equivalent of the legacy string search on key+"\x00".
func partitionIndex[T bed.ChromName](key bed.Key, name T, boundaries []Boundary) int {
	return sort.Search(len(boundaries), func(i int) bool {
		return bed.CompareKeyName(boundaries[i].Key, boundaries[i].Name, key, name) > 0
	})
}

// chromOf returns the first column of an encoded TSV line.
func chromOf(line []byte) []byte {
	if i := bytes.IndexByte(line, '\t'); i >= 0 {
		return line[:i]
	}
	return line
}

// compareLineKeys orders (key, encoded-line) pairs in exact genome
// order: the full chromosome column breaks (rank, name-prefix) ties
// for beyond-table names, lazily — the column is only sliced out on
// the rare tie-with-packed-name path.
func compareLineKeys(ak bed.Key, aLine []byte, bk bed.Key, bLine []byte) int {
	if ak.Rank == bk.Rank && ak.Prefix == bk.Prefix && ak.NamePacked() {
		if c := bytes.Compare(chromOf(aLine), chromOf(bLine)); c != 0 {
			return c
		}
	}
	return bed.CompareKey(ak, bk)
}

// lineRef locates one encoded record inside a partition buffer.
// 32-bit offsets bound a single partition buffer at 2 GiB — far above
// any per-worker slice the planner's memory model admits; place()
// rejects a partition that would cross it.
type lineRef struct {
	key      bed.Key
	off, len int32
}

// runPart accumulates one reducer's partition: encoded lines plus a
// key index over them.
type runPart struct {
	buf  []byte
	refs []lineRef
}

// runBuilder routes records into per-reducer partitions and finishes
// each as a sorted run. It never materializes a []bed.Record: lines
// are encoded (or copied) straight into partition buffers, and sorting
// permutes the compact lineRef index, not records.
type runBuilder struct {
	bounds  []Boundary
	parts   []runPart
	partCap int // per-partition first-allocation size; 0 grows organically
}

func newRunBuilder(workers int, bounds []Boundary) *runBuilder {
	return &runBuilder{bounds: bounds, parts: make([]runPart, workers)}
}

// sizeHint pre-sizes each partition's buffers for an expected total
// input volume (+25% headroom for boundary skew), sparing the append
// path its regrowth copies.
func (b *runBuilder) sizeHint(totalBytes int) {
	if totalBytes > 0 && len(b.parts) > 0 {
		per := totalBytes / len(b.parts)
		b.partCap = per + per/4
	}
}

func (b *runBuilder) place(key bed.Key, off int, p *runPart) error {
	if len(p.buf) > 1<<31-1 {
		// lineRef's int32 offsets would wrap; fail loudly instead of
		// corrupting the run index.
		return errPartitionTooLarge
	}
	if p.refs == nil && b.partCap > 0 {
		p.refs = make([]lineRef, 0, b.partCap/32) // bedMethyl lines run ~48 bytes
	}
	p.refs = append(p.refs, lineRef{key: key, off: int32(off), len: int32(len(p.buf) - off)})
	return nil
}

// grow pre-sizes a partition buffer on first touch.
func (b *runBuilder) grow(p *runPart) {
	if p.buf == nil && b.partCap > 0 {
		p.buf = make([]byte, 0, b.partCap)
	}
}

// Add parses one raw input line, validates and normalizes it, and
// routes it to its partition.
func (b *runBuilder) Add(line []byte) error {
	rec, err := bed.ParseLine(line)
	if err != nil {
		return err
	}
	key := bed.KeyOf(rec)
	p := &b.parts[partitionIndex(key, rec.Chrom, b.bounds)]
	b.grow(p)
	off := len(p.buf)
	p.buf = bed.AppendTSV(p.buf, rec)
	return b.place(key, off, p)
}

// AddEncoded routes an already-normalized TSV line (a mapper's own
// output, re-partitioned by the hierarchical round 2) by parsing only
// its key columns and copying the bytes verbatim.
func (b *runBuilder) AddEncoded(line []byte) error {
	key, err := bed.KeyOfLine(line)
	if err != nil {
		return err
	}
	p := &b.parts[partitionIndex(key, chromOf(line), b.bounds)]
	b.grow(p)
	off := len(p.buf)
	p.buf = append(p.buf, line...)
	p.buf = append(p.buf, '\n')
	return b.place(key, off, p)
}

// Finish sorts every partition into a sorted run and returns the run
// buffers, one per reducer (nil for empty partitions).
func (b *runBuilder) Finish() [][]byte {
	out := make([][]byte, len(b.parts))
	for i := range b.parts {
		out[i] = b.parts[i].finish()
	}
	return out
}

func (p *runPart) finish() []byte {
	cmp := func(a, b lineRef) int {
		return compareLineKeys(a.key, p.line(a), b.key, p.line(b))
	}
	sorted := true
	for i := 1; i < len(p.refs); i++ {
		if cmp(p.refs[i-1], p.refs[i]) > 0 {
			sorted = false
			break
		}
	}
	if sorted { // already a run (common for pre-sorted input): no copy
		return p.buf
	}
	slices.SortStableFunc(p.refs, cmp)
	dst := make([]byte, 0, len(p.buf))
	for _, ref := range p.refs {
		dst = append(dst, p.buf[ref.off:ref.off+ref.len]...)
	}
	return dst
}

// line slices a ref's encoded line out of the partition buffer.
func (p *runPart) line(r lineRef) []byte {
	return p.buf[r.off : r.off+r.len]
}

// forEachLine calls fn for every non-blank line of raw.
func forEachLine(raw []byte, fn func(line []byte) error) error {
	for len(raw) > 0 {
		var line []byte
		if nl := bytes.IndexByte(raw, '\n'); nl < 0 {
			line, raw = raw, nil
		} else {
			line, raw = raw[:nl], raw[nl+1:]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return nil
}

// runCursor walks one sorted run line by line during a merge.
type runCursor struct {
	data []byte  // unconsumed bytes
	line []byte  // current line, without newline
	key  bed.Key // current line's sort key
	idx  int     // run index, the deterministic tie-break
	live bool    // a current line is loaded
}

// advance loads the cursor's next non-blank line, verifying the run
// stays sorted (the mappers' invariant — a violation here means a
// corrupted scratch object, and silently merging it would emit
// unsorted output).
func (c *runCursor) advance() error {
	prevKey, prevLine, hadPrev := c.key, c.line, c.live
	c.live = false
	for len(c.data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(c.data, '\n'); nl < 0 {
			line, c.data = c.data, nil
		} else {
			line, c.data = c.data[:nl], c.data[nl+1:]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		key, err := bed.KeyOfLine(line)
		if err != nil {
			return fmt.Errorf("run %d: %w", c.idx, err)
		}
		if hadPrev && compareLineKeys(key, line, prevKey, prevLine) < 0 {
			return fmt.Errorf("run %d is not sorted", c.idx)
		}
		c.line, c.key, c.live = line, key, true
		return nil
	}
	return nil
}

// cursorLess orders heap entries in exact genome order, then run index
// for deterministic merges.
func cursorLess(a, b *runCursor) bool {
	if c := compareLineKeys(a.key, a.line, b.key, b.line); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// mergeRuns streams k sorted runs into one globally sorted TSV buffer
// via a binary min-heap of per-run cursors, copying each winning line
// verbatim into the output. Peak memory is the runs plus one output
// buffer — no []bed.Record, no re-serialization, no full re-sort.
func mergeRuns(runs [][]byte) ([]byte, error) {
	total := 0
	cursors := make([]runCursor, len(runs))
	h := make([]*runCursor, 0, len(runs))
	for i, run := range runs {
		total += len(run)
		c := &cursors[i]
		c.data, c.idx = run, i
		if err := c.advance(); err != nil {
			return nil, err
		}
		if c.live {
			h = append(h, c)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	out := make([]byte, 0, total)
	for len(h) > 0 {
		c := h[0]
		out = append(out, c.line...)
		out = append(out, '\n')
		if err := c.advance(); err != nil {
			return nil, err
		}
		if !c.live {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	return out, nil
}

func siftDown(h []*runCursor, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && cursorLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && cursorLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

var (
	errNoLineStart       = errors.New("no line start in slice")
	errPartitionTooLarge = errors.New("partition exceeds the 2 GiB run-index bound")
)

// appendIndex4 appends n zero-padded to four digits (the %04d the
// data plane's key formats use), growing past four digits like fmt
// would.
func appendIndex4(b []byte, n int) []byte {
	if n < 0 || n > 9999 {
		return strconv.AppendInt(b, int64(n), 10)
	}
	return append(b,
		byte('0'+n/1000), byte('0'+n/100%10), byte('0'+n/10%10), byte('0'+n%10))
}

// partKey names the intermediate object mapper m writes for reducer r.
// Append-based: it runs workers^2 times per job, so the fmt.Sprintf it
// replaces was a measurable constant cost.
func partKey(jobID string, m, r int) string {
	b := make([]byte, 0, len(jobID)+len("/m0000_r0000"))
	b = append(b, jobID...)
	b = append(b, '/', 'm')
	b = appendIndex4(b, m)
	b = append(b, '_', 'r')
	b = appendIndex4(b, r)
	return string(b)
}

// outputKey names reducer idx's globally-ordered output part.
func outputKey(prefix string, idx int) string {
	b := make([]byte, 0, len(prefix)+len("part-0000"))
	b = append(b, prefix...)
	b = append(b, "part-"...)
	b = appendIndex4(b, idx)
	return string(b)
}
