package shuffle

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
)

func marshalSorted(recs []bed.Record) []byte {
	s := make([]bed.Record, len(recs))
	copy(s, recs)
	bed.Sort(s)
	return bed.Marshal(s)
}

func TestRunBuilderEmitsSortedRuns(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 71, Sorted: false})
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 4)
	parts, err := partitionRaw(raw, false, 0, int64(len(raw)), 4, bounds)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	var n int
	var prevLast bed.Key
	for i, part := range parts {
		got, err := bed.Unmarshal(part)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if !bed.IsSorted(got) {
			t.Fatalf("partition %d is not a sorted run", i)
		}
		if len(got) > 0 {
			first := bed.KeyOf(got[0])
			if i > 0 && bed.CompareKey(first, prevLast) < 0 {
				t.Fatalf("partition %d overlaps partition boundary", i)
			}
			prevLast = bed.KeyOf(got[len(got)-1])
		}
		n += len(got)
	}
	if n != len(recs) {
		t.Fatalf("partitioned %d records, want %d", n, len(recs))
	}
}

func TestRunBuilderAlreadySortedSkipsCopy(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 500, Seed: 72, Sorted: true})
	raw := bed.Marshal(recs)
	parts, err := partitionRaw(raw, false, 0, int64(len(raw)), 1, nil)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	if !bytes.Equal(parts[0], raw) {
		t.Fatal("single-partition sorted input should round-trip byte-identically")
	}
}

func TestMergeRunsMatchesFullSort(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 73, Sorted: false})
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 8)
	runs, err := partitionRaw(raw, false, 0, int64(len(raw)), 8, bounds)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	// Merging the runs of ONE mapper reproduces the mapper's whole
	// slice in sorted order (partition ranges are disjoint, so this
	// exercises both the heap and run exhaustion).
	merged, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if want := marshalSorted(recs); !bytes.Equal(merged, want) {
		t.Fatal("merge of one mapper's runs != full sort of its records")
	}
}

func TestMergeRunsInterleaved(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 999, Seed: 74, Sorted: false})
	bed.Sort(recs)
	const w = 5
	lists := make([][]bed.Record, w)
	for i, r := range recs {
		lists[i%w] = append(lists[i%w], r)
	}
	runs := make([][]byte, w)
	for i, rl := range lists {
		runs[i] = bed.Marshal(rl)
	}
	runs = append(runs, nil, []byte("\n\n")) // empty and blank-only runs
	merged, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if !bytes.Equal(merged, bed.Marshal(recs)) {
		t.Fatal("interleaved merge != globally sorted serialization")
	}
}

func TestMergeRunsRejectsUnsortedRun(t *testing.T) {
	a := bed.Record{Chrom: "chr2", Start: 100, End: 101, Name: ".", Strand: '+'}
	b := bed.Record{Chrom: "chr1", Start: 5, End: 6, Name: ".", Strand: '+'}
	run := bed.AppendTSV(bed.AppendTSV(nil, a), b) // descending: invariant broken
	if _, err := mergeRuns([][]byte{run}); err == nil {
		t.Fatal("unsorted run accepted by mergeRuns")
	}
}

func TestMergeRunsRejectsCorruptLine(t *testing.T) {
	if _, err := mergeRuns([][]byte{[]byte("chr1\tnot-a-number\t2\n")}); err == nil {
		t.Fatal("corrupt line accepted by mergeRuns")
	}
}

func TestPartKeyMatchesLegacyFormat(t *testing.T) {
	for _, c := range []struct{ m, r int }{{0, 0}, {3, 7}, {42, 9999}} {
		want := fmt.Sprintf("job-1/m%04d_r%04d", c.m, c.r)
		if got := partKey("job-1", c.m, c.r); got != want {
			t.Errorf("partKey(%d, %d) = %q, want %q", c.m, c.r, got, want)
		}
	}
}

func TestOutputKeyMatchesLegacyFormat(t *testing.T) {
	for _, idx := range []int{0, 7, 321, 9999} {
		want := fmt.Sprintf("sorted/part-%04d", idx)
		if got := outputKey("sorted/", idx); got != want {
			t.Errorf("outputKey(%d) = %q, want %q", idx, got, want)
		}
	}
}

// TestOutputKeyOrderSurvivesWideIndices: SortHierarchical recovers
// global part order with sort.Strings(OutputKeys), which silently
// broke past index 9999 when the names grew digits like %04d does
// ("part-10000" < "part-9999" in byte order). The widened encoding
// must keep lexicographic order == numeric order across every width
// transition.
func TestOutputKeyOrderSurvivesWideIndices(t *testing.T) {
	idxs := []int{
		0, 1, 9998, 9999, // legacy 4-digit band
		10000, 10001, 99999, 123456, 99999999, // 8-digit band
		100000000, 100000001, 1 << 40, // 19-digit band
	}
	keys := make([]string, len(idxs))
	for i, idx := range idxs {
		keys[i] = outputKey("sorted/", idx)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("output keys do not sort in index order:\n%v", keys)
	}
	// The legacy 4-digit band is byte-for-byte what fmt produced.
	if got, want := keys[3], "sorted/part-9999"; got != want {
		t.Fatalf("legacy band changed: %q, want %q", got, want)
	}
	// Distinct indices must yield distinct keys even across bands.
	seen := map[string]bool{}
	for i, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q for index %d", k, idxs[i])
		}
		seen[k] = true
	}
}

// mergeRuns edge cases: the shapes a real merge can see around run
// exhaustion and degenerate inputs.

func TestMergeRunsNoRuns(t *testing.T) {
	out, err := mergeRuns(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("mergeRuns(nil) = %q, %v", out, err)
	}
	out, err = mergeRuns([][]byte{nil, {}, []byte("\n \n")})
	if err != nil || len(out) != 0 {
		t.Fatalf("merge of empty/blank runs = %q, %v", out, err)
	}
}

func TestMergeRunsSingleRun(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 100, Seed: 75, Sorted: true})
	run := bed.Marshal(recs)
	out, err := mergeRuns([][]byte{run})
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if !bytes.Equal(out, run) {
		t.Fatal("single sorted run should round-trip byte-identically")
	}
}

func TestMergeRunsAllEqualKeys(t *testing.T) {
	// Every record carries the same key; the heap must fall back to
	// the run-index tie-break, so the merge concatenates the runs in
	// index order deterministically.
	line := func(tag string) []byte {
		r := bed.Record{Chrom: "chr3", Start: 50, End: 51, Name: tag,
			Score: 1, Strand: '+', Coverage: 1, MethPct: 10}
		return bed.AppendTSV(nil, r)
	}
	runs := [][]byte{
		append(append([]byte{}, line("a")...), line("b")...),
		append(append([]byte{}, line("c")...), line("d")...),
		line("e"),
	}
	out, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	want := bytes.Join([][]byte{runs[0], runs[1], runs[2]}, nil)
	if !bytes.Equal(out, want) {
		t.Fatalf("equal-key merge is not run-index order:\n got %q\nwant %q", out, want)
	}
}

func TestMergeRunsTrailingUnterminatedLine(t *testing.T) {
	a := bed.Record{Chrom: "chr1", Start: 1, End: 2, Name: ".", Score: 1,
		Strand: '+', Coverage: 1, MethPct: 5}
	b := bed.Record{Chrom: "chr1", Start: 9, End: 10, Name: ".", Score: 1,
		Strand: '-', Coverage: 1, MethPct: 6}
	run := bed.AppendTSV(bed.AppendTSV(nil, a), b)
	run = run[:len(run)-1] // strip the final newline
	out, err := mergeRuns([][]byte{run})
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if want := append(append([]byte{}, run...), '\n'); !bytes.Equal(out, want) {
		t.Fatalf("unterminated final line mishandled:\n got %q\nwant %q", out, want)
	}
}

func TestMergeRunsCursorExhaustsMidMerge(t *testing.T) {
	// Run 0 exhausts while runs 1 and 2 still hold records: the heap
	// must drop the dead cursor and keep merging the remainder.
	mk := func(starts ...int64) []byte {
		var out []byte
		for _, s := range starts {
			out = bed.AppendTSV(out, bed.Record{Chrom: "chr2", Start: s, End: s + 1,
				Name: ".", Score: 1, Strand: '+', Coverage: 1, MethPct: 50})
		}
		return out
	}
	runs := [][]byte{mk(10, 11), mk(5, 20, 40), mk(1, 30, 50, 60)}
	out, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	want := mk(1, 5, 10, 11, 20, 30, 40, 50, 60)
	if !bytes.Equal(out, want) {
		t.Fatalf("mid-merge exhaustion mishandled:\n got %q\nwant %q", out, want)
	}
}

// legacySortRun is the PR 3 runPart.finish body — stable comparison
// sort over the ref index, then copy-out — kept as the oracle the
// radix path must reproduce byte for byte, and as the benchmark
// baseline.
func legacySortRun(p *runPart) []byte {
	cmp := func(a, b lineRef) int {
		return compareLineKeys(a.key, p.line(a), b.key, p.line(b))
	}
	slices.SortStableFunc(p.refs, cmp)
	dst := make([]byte, 0, len(p.buf))
	for _, ref := range p.refs {
		dst = append(dst, p.buf[ref.off:ref.off+ref.len]...)
	}
	return dst
}

// buildRunPart encodes records into one partition buffer + ref index,
// exactly as runBuilder.Add lays them out (but without pooled scratch,
// so tests and benchmarks own the memory).
func buildRunPart(recs []bed.Record) runPart {
	var p runPart
	for _, r := range recs {
		off := len(p.buf)
		p.buf = bed.AppendTSV(p.buf, r)
		p.refs = append(p.refs, lineRef{key: bed.KeyOf(r), off: int32(off), len: int32(len(p.buf) - off)})
	}
	return p
}

// adversarialRecords mixes generated records with the shapes that
// stress the radix sort's fallbacks: beyond-table scaffolds sharing
// 8-byte name prefixes, duplicate keys with distinct payloads (where
// only input-order stability keeps bytes identical), and names shorter
// than the packed prefix.
func adversarialRecords(seed int64, n int) []bed.Record {
	recs := bed.Generate(bed.GenConfig{Records: n, Seed: seed, Sorted: false})
	base := bed.Record{Name: ".", Score: 1, Strand: '+', Coverage: 1, MethPct: 50}
	for i := 0; i < n/4; i++ {
		r := base
		switch i % 5 {
		case 0:
			r.Chrom = "chrUn_KI270302v1"
		case 1:
			r.Chrom = "chrUn_KI270303v1" // collides with case 0 in the 8-byte prefix
		case 2:
			r.Chrom = "chrUn_K" // shorter than the packed prefix
		case 3:
			r.Chrom = "chr300" // numeric beyond-table rank, zero prefix
		default:
			r.Chrom = "chr9"
		}
		r.Start = int64(1000 + (i*37)%257) // plenty of duplicate intervals
		r.End = r.Start + 1
		r.MethPct = i % 100 // duplicates differ in payload bytes only
		recs = append(recs, r)
	}
	// Deterministic shuffle so duplicates interleave across the slice.
	for i := len(recs) - 1; i > 0; i-- {
		j := (i*2654435761 + int(seed)) % (i + 1)
		if j < 0 {
			j += i + 1
		}
		recs[i], recs[j] = recs[j], recs[i]
	}
	return recs
}

// TestPropertyFinishMatchesStableSort: the ISSUE 4 differential — the
// radix finish must emit byte-identical runs to the stable comparison
// sort it replaced, on random records, adversarial shared-prefix
// names, and duplicate keys.
func TestPropertyFinishMatchesStableSort(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		recs := adversarialRecords(seed, 2000)
		oracle := buildRunPart(recs)
		want := legacySortRun(&oracle)
		radix := buildRunPart(recs)
		got := (&radix).finish()
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: radix finish diverges from stable comparison sort", seed)
		}
	}
}

// TestMergeSplitMatchesRouteAndSort: the merge-split repartitioner
// must produce exactly what routing every line and stable-sorting each
// partition produced in PR 3 — including keys equal to a boundary
// routing right, empty partitions staying nil, and inputs arriving as
// multiple overlapping runs.
func TestMergeSplitMatchesRouteAndSort(t *testing.T) {
	recs := adversarialRecords(99, 3000)
	const g, k = 3, 5
	bounds := benchBounds(recs, k)
	// Inject exact duplicates of every boundary so the
	// equal-routes-right rule is exercised for real, not just when the
	// sampled boundaries happen to recur in the input.
	invOrder := func(v uint64) int64 { return int64(v ^ 1<<63) }
	for _, bd := range bounds {
		recs = append(recs, bed.Record{
			Chrom: bd.Name, Start: invOrder(bd.Key.Start), End: invOrder(bd.Key.End),
			Name: ".", Score: 1, Strand: '+', Coverage: 1, MethPct: 42,
		})
	}
	lists := make([][]bed.Record, g)
	for i, r := range recs {
		lists[i%g] = append(lists[i%g], r)
	}
	runs := make([][]byte, g)
	for i, rl := range lists {
		bed.Sort(rl)
		runs[i] = bed.Marshal(rl)
	}
	got, err := mergeSplit(runs, k, bounds)
	if err != nil {
		t.Fatalf("mergeSplit: %v", err)
	}
	// Oracle: route each line by binary search, then stable-sort each
	// partition — the PR 3 repartition body (AddEncoded stored each
	// line's trailing newline inside the ref, so the copy-out already
	// emits terminated lines).
	oracle := make([]runPart, k)
	for _, run := range runs {
		if err := forEachLine(run, func(line []byte) error {
			key, err := bed.KeyOfLine(line)
			if err != nil {
				return err
			}
			p := &oracle[partitionIndex(key, chromOf(line), bounds)]
			off := len(p.buf)
			p.buf = append(p.buf, line...)
			p.buf = append(p.buf, '\n')
			p.refs = append(p.refs, lineRef{key: key, off: int32(off), len: int32(len(p.buf) - off)})
			return nil
		}); err != nil {
			t.Fatalf("oracle routing: %v", err)
		}
	}
	for r := 0; r < k; r++ {
		var want []byte
		if len(oracle[r].refs) > 0 {
			want = legacySortRun(&oracle[r])
		}
		if want == nil && len(got[r]) != 0 {
			t.Fatalf("partition %d: want empty, got %d bytes", r, len(got[r]))
		}
		if !bytes.Equal(got[r], want) {
			t.Fatalf("partition %d: merge-split diverges from route-and-sort (%d vs %d bytes)",
				r, len(got[r]), len(want))
		}
	}
}
