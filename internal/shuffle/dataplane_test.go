package shuffle

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
)

func marshalSorted(recs []bed.Record) []byte {
	s := make([]bed.Record, len(recs))
	copy(s, recs)
	bed.Sort(s)
	return bed.Marshal(s)
}

func TestRunBuilderEmitsSortedRuns(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 71, Sorted: false})
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 4)
	parts, err := partitionRaw(raw, false, 0, int64(len(raw)), 4, bounds)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	var n int
	var prevLast bed.Key
	for i, part := range parts {
		got, err := bed.Unmarshal(part)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if !bed.IsSorted(got) {
			t.Fatalf("partition %d is not a sorted run", i)
		}
		if len(got) > 0 {
			first := bed.KeyOf(got[0])
			if i > 0 && bed.CompareKey(first, prevLast) < 0 {
				t.Fatalf("partition %d overlaps partition boundary", i)
			}
			prevLast = bed.KeyOf(got[len(got)-1])
		}
		n += len(got)
	}
	if n != len(recs) {
		t.Fatalf("partitioned %d records, want %d", n, len(recs))
	}
}

func TestRunBuilderAlreadySortedSkipsCopy(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 500, Seed: 72, Sorted: true})
	raw := bed.Marshal(recs)
	parts, err := partitionRaw(raw, false, 0, int64(len(raw)), 1, nil)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	if !bytes.Equal(parts[0], raw) {
		t.Fatal("single-partition sorted input should round-trip byte-identically")
	}
}

func TestMergeRunsMatchesFullSort(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 73, Sorted: false})
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 8)
	runs, err := partitionRaw(raw, false, 0, int64(len(raw)), 8, bounds)
	if err != nil {
		t.Fatalf("partitionRaw: %v", err)
	}
	// Merging the runs of ONE mapper reproduces the mapper's whole
	// slice in sorted order (partition ranges are disjoint, so this
	// exercises both the heap and run exhaustion).
	merged, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if want := marshalSorted(recs); !bytes.Equal(merged, want) {
		t.Fatal("merge of one mapper's runs != full sort of its records")
	}
}

func TestMergeRunsInterleaved(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 999, Seed: 74, Sorted: false})
	bed.Sort(recs)
	const w = 5
	lists := make([][]bed.Record, w)
	for i, r := range recs {
		lists[i%w] = append(lists[i%w], r)
	}
	runs := make([][]byte, w)
	for i, rl := range lists {
		runs[i] = bed.Marshal(rl)
	}
	runs = append(runs, nil, []byte("\n\n")) // empty and blank-only runs
	merged, err := mergeRuns(runs)
	if err != nil {
		t.Fatalf("mergeRuns: %v", err)
	}
	if !bytes.Equal(merged, bed.Marshal(recs)) {
		t.Fatal("interleaved merge != globally sorted serialization")
	}
}

func TestMergeRunsRejectsUnsortedRun(t *testing.T) {
	a := bed.Record{Chrom: "chr2", Start: 100, End: 101, Name: ".", Strand: '+'}
	b := bed.Record{Chrom: "chr1", Start: 5, End: 6, Name: ".", Strand: '+'}
	run := bed.AppendTSV(bed.AppendTSV(nil, a), b) // descending: invariant broken
	if _, err := mergeRuns([][]byte{run}); err == nil {
		t.Fatal("unsorted run accepted by mergeRuns")
	}
}

func TestMergeRunsRejectsCorruptLine(t *testing.T) {
	if _, err := mergeRuns([][]byte{[]byte("chr1\tnot-a-number\t2\n")}); err == nil {
		t.Fatal("corrupt line accepted by mergeRuns")
	}
}

func TestPartKeyMatchesLegacyFormat(t *testing.T) {
	for _, c := range []struct{ m, r int }{{0, 0}, {3, 7}, {42, 9999}, {10000, 123456}} {
		want := fmt.Sprintf("job-1/m%04d_r%04d", c.m, c.r)
		if got := partKey("job-1", c.m, c.r); got != want {
			t.Errorf("partKey(%d, %d) = %q, want %q", c.m, c.r, got, want)
		}
	}
}

func TestOutputKeyMatchesLegacyFormat(t *testing.T) {
	for _, idx := range []int{0, 7, 321, 9999, 12345} {
		want := fmt.Sprintf("sorted/part-%04d", idx)
		if got := outputKey("sorted/", idx); got != want {
			t.Errorf("outputKey(%d) = %q, want %q", idx, got, want)
		}
	}
}
