package shuffle

import (
	"bytes"
	"testing"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

func TestAdaptiveChunkBytes(t *testing.T) {
	cases := []struct {
		explicit, slice, want int64
	}{
		{1 << 20, 64 << 20, 1 << 20},   // explicit override wins
		{0, 64 << 20, maxStreamChunk},  // big slice clamps to ceiling
		{0, 100 << 10, minStreamChunk}, // small slice clamps to floor
		{0, 4 << 20, 512 << 10},        // in band: slice/8
		{0, 0, minStreamChunk},         // unknown slice: floor
	}
	for _, c := range cases {
		if got := AdaptiveChunkBytes(c.explicit, c.slice); got != c.want {
			t.Errorf("AdaptiveChunkBytes(%d, %d) = %d, want %d", c.explicit, c.slice, got, c.want)
		}
	}
}

// streamReduceRig builds a sort rig whose store is slow enough that
// the reduce transfers rival the merge CPU, optionally with injected
// failures — the regime where streaming's overlap matters.
func streamReduceRig(t *testing.T, seed int64, perConnBps, failureRate float64) *testRig {
	t.Helper()
	sim := des.New(seed)
	store, err := objectstore.New(sim, objectstore.Config{
		RequestLatency:   time.Millisecond,
		PerConnBandwidth: perConnBps,
		ReadOpsPerSec:    1e6,
		WriteOpsPerSec:   1e6,
		OpsBurst:         1e6,
		FailureRate:      failureRate,
	})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	pf, err := faas.New(sim, store, faas.Config{
		ColdStart:          50 * time.Millisecond,
		WarmStart:          5 * time.Millisecond,
		KeepAlive:          10 * time.Minute,
		MemoryMB:           2048,
		BaselineMemoryMB:   2048,
		ConcurrencyLimit:   500,
		BillingGranularity: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	op, err := NewOperator(pf, store)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	return &testRig{sim: sim, store: store, pf: pf, op: op}
}

// TestStreamedReduceOverlapsTransfer is the reduce-side acceptance
// criterion: with transfer rates rivaling the merge rate, the streamed
// reduce phase — concurrent chunked GETs feeding the k-way merge while
// completed output parts upload — must beat the buffered read + merge
// + write sum by roughly the two legs it hides.
func TestStreamedReduceOverlapsTransfer(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 1 << 18, Seed: 19, Sorted: false})

	run := func(buffered bool) Result {
		rig := streamReduceRig(t, 5, 4e6, 0)
		spec := sortSpec(4)
		spec.MergeBps = 4e6 // merge-bound ≈ transfer-bound: maximal overlap win
		spec.StreamChunkBytes = 256 << 10
		spec.BufferedRead = buffered
		res, sorted := runSort(t, rig, recs, spec)
		if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
			t.Fatal("overlap rig sorted incorrectly")
		}
		return res
	}

	streamRes := run(false)
	bufRes := run(true)

	if streamRes.Phase2 >= bufRes.Phase2 {
		t.Fatalf("streamed Phase2 %v not faster than buffered %v", streamRes.Phase2, bufRes.Phase2)
	}
	// Buffered pays read + merge + write serially (~3 equal legs);
	// streamed costs ~max of the three. Require well under 2/3.
	if bound := bufRes.Phase2 * 6 / 10; streamRes.Phase2 > bound {
		t.Fatalf("streamed Phase2 %v hides too little (buffered %v, want <= %v)",
			streamRes.Phase2, bufRes.Phase2, bound)
	}
	t.Logf("reduce phase2: streamed %v vs buffered %v", streamRes.Phase2, bufRes.Phase2)
}

// TestSmallJobAdaptiveChunkOverlap: a job whose reduce runs fit inside
// one default 4 MiB chunk would degenerate to a buffered read at fixed
// granularity; the adaptive slice/8 clamp must restore genuine
// transfer/compute overlap with no explicit tuning.
func TestSmallJobAdaptiveChunkOverlap(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 1 << 18, Seed: 23, Sorted: false})

	run := func(chunk int64) Result {
		rig := streamReduceRig(t, 7, 4e6, 0)
		spec := sortSpec(4)
		spec.MergeBps = 4e6
		spec.StreamChunkBytes = chunk // 0: adaptive
		res, sorted := runSort(t, rig, recs, spec)
		if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
			t.Fatal("small-job rig sorted incorrectly")
		}
		return res
	}

	adaptive := run(0)
	fixed := run(objectstore.DefaultStreamChunk)
	if adaptive.TotalBytes/4 >= objectstore.DefaultStreamChunk {
		t.Fatalf("workload too large for the test's premise: %d bytes/worker", adaptive.TotalBytes/4)
	}
	if adaptive.Phase2 >= fixed.Phase2 {
		t.Fatalf("adaptive chunking Phase2 %v not faster than fixed 4 MiB %v on a small job",
			adaptive.Phase2, fixed.Phase2)
	}
	t.Logf("small job phase2: adaptive %v vs fixed-4MiB %v", adaptive.Phase2, fixed.Phase2)
}

// TestStreamedReduceUnderStoreFailuresWithCleanup: throttles hitting
// the reduce streams' continuations mid-merge must resume within the
// shared MaxRetries budget, and CleanupScratch's deferred deletes must
// stay past the durable multipart complete — so retried reducers can
// re-read their runs, bytes stay identical, and no scratch survives.
func TestStreamedReduceUnderStoreFailuresWithCleanup(t *testing.T) {
	rig := streamReduceRig(t, 17, 1e9, 0.1)
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 85, Sorted: false})
	want := seedSortedBytes(recs)
	spec := sortSpec(4)
	spec.StreamChunkBytes = 4096 // many continuations per stream: plenty of failure draws
	spec.MaxRetries = 8
	spec.CleanupScratch = true
	var got []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := rig.op.Sort(p, spec)
		if err != nil {
			t.Errorf("Sort under failures: %v", err)
			return
		}
		got = fetchRawParts(t, rig, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output corrupt under injected failures: %d bytes, want %d", len(got), len(want))
	}
	if rig.store.Metrics().Throttled == 0 {
		t.Fatal("no throttles metered at 10% failure rate; test exercised nothing")
	}
	if keys := scratchKeys(t, rig, "out"); len(keys) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(keys), keys)
	}
}
