package shuffle

// The streaming reduce path: instead of buffering every mapper's run
// before the k-way merge starts, each run arrives as a stream of chunks
// (objectstore.Client.GetStream) and the merge begins as soon as every
// run's head chunk is in. A chunk-fed cursor parks on Stream.Next at
// chunk boundaries and carries a partial trailing line across them
// (the lineFeeder ownership rules), so transfer-in, merge CPU — charged
// per chunk at MergeBps — and the multipart transfer-out behind
// objectstore.Client.PutStream all overlap: the reduce leg costs
// max(transfer-in, mergeCPU, transfer-out) instead of their sum.

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

const (
	// minStreamChunk / maxStreamChunk clamp the adaptive chunk size: a
	// floor keeps per-chunk event overhead noise, the ceiling is the
	// stream layer's default granularity.
	minStreamChunk = 256 << 10
	maxStreamChunk = objectstore.DefaultStreamChunk
)

// AdaptiveChunkBytes picks the stream transfer granularity for a
// planned slice: an explicit spec override wins, otherwise slice/8
// clamped to [256 KiB, 4 MiB] — so a small job whose whole slice fits
// in one default 4 MiB chunk still gets ~8 chunks of genuine
// transfer/compute overlap instead of degenerating to a buffered read.
func AdaptiveChunkBytes(explicit, slice int64) int64 {
	if explicit > 0 {
		return explicit
	}
	c := slice / 8
	if c < minStreamChunk {
		c = minStreamChunk
	}
	if c > maxStreamChunk {
		c = maxStreamChunk
	}
	return c
}

// errSizedChunk aborts a streamed merge when a run turns out to be a
// timing-only payload; the driver falls back to draining byte counts.
var errSizedChunk = errors.New("shuffle: sized chunk in streamed run")

// runSource feeds one sorted run to the merge as a sequence of chunk
// payloads. next returns io.EOF when the run is exhausted; close
// releases the source (always safe, also after exhaustion).
type runSource interface {
	next(p *des.Proc) (payload.Payload, error)
	close()
}

// clientStreamSource adapts a resumable object-store stream.
type clientStreamSource struct{ cs *objectstore.ClientStream }

func (s clientStreamSource) next(p *des.Proc) (payload.Payload, error) { return s.cs.Next(p) }
func (s clientStreamSource) close()                                    { s.cs.Close() }

// payloadSource feeds an already-resident payload chunk by chunk — the
// cache reducer's runs arrive via memcache Get (no streaming API), but
// chunked consumption still spreads the merge's CPU charges so the
// output writer's part uploads overlap them.
type payloadSource struct {
	pl    payload.Payload
	off   int64
	chunk int64
}

func (s *payloadSource) next(p *des.Proc) (payload.Payload, error) {
	size := s.pl.Size()
	if s.off >= size {
		return nil, io.EOF
	}
	n := s.chunk
	if n <= 0 {
		n = size
	}
	if s.off+n > size {
		n = size - s.off
	}
	out, err := s.pl.Slice(s.off, n)
	if err != nil {
		return nil, err
	}
	s.off += n
	return out, nil
}

func (s *payloadSource) close() {}

// streamCursor walks one chunk-fed sorted run line by line, the
// streaming counterpart of runCursor. Lines fully inside a chunk are
// views into the chunk's payload bytes (which outlive the chunk); a
// line spanning chunks is assembled in one of two alternating carry
// buffers, so the sortedness check's previous line — possibly itself
// carried — stays intact while the next one assembles.
type streamCursor struct {
	src    runSource
	proc   *des.Proc
	charge func(n int64) // per-chunk merge CPU, nil for none

	chunk []byte    // unconsumed tail of the current chunk
	carry [2][]byte // alternating partial-line buffers
	flip  int       // carry[flip] may hold the live line; 1-flip assembles

	line  []byte
	key   bed.Key
	idx   int
	live  bool
	eof   bool
	total int64 // bytes pulled from the source
}

// nextChunk pulls and charges the next chunk. io.EOF at range end;
// errSizedChunk on a timing-only payload.
func (c *streamCursor) nextChunk() error {
	pl, err := c.src.next(c.proc)
	if err != nil {
		return err
	}
	n := pl.Size()
	c.total += n
	if c.charge != nil {
		c.charge(n)
	}
	raw, real := pl.Bytes()
	if !real {
		return errSizedChunk
	}
	c.chunk = raw
	return nil
}

// advance loads the cursor's next non-blank line, pulling chunks as
// needed and verifying the run stays sorted across chunk boundaries —
// the same mapper invariant runCursor.advance enforces.
func (c *streamCursor) advance() error {
	prevKey, prevLine, hadPrev := c.key, c.line, c.live
	c.live = false
	carry := c.carry[1-c.flip][:0]
	for {
		if len(c.chunk) == 0 {
			if !c.eof {
				switch err := c.nextChunk(); {
				case err == nil:
					continue
				case errors.Is(err, io.EOF):
					c.eof = true
				default:
					return err
				}
			}
			// Stream drained: flush the unterminated final line.
			c.carry[1-c.flip] = carry
			if len(bytes.TrimSpace(carry)) == 0 {
				return nil
			}
			return c.load(carry, prevKey, prevLine, hadPrev, true)
		}
		nl := bytes.IndexByte(c.chunk, '\n')
		if nl < 0 {
			carry = append(carry, c.chunk...)
			c.chunk = nil
			continue
		}
		line := c.chunk[:nl]
		fromCarry := false
		if len(carry) > 0 {
			carry = append(carry, line...)
			line = carry
			fromCarry = true
		}
		c.chunk = c.chunk[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			carry = carry[:0]
			continue
		}
		c.carry[1-c.flip] = carry
		return c.load(line, prevKey, prevLine, hadPrev, fromCarry)
	}
}

// load keys and verifies one line. A carried line claims its buffer by
// flipping, protecting it until the line after next assembles.
func (c *streamCursor) load(line []byte, prevKey bed.Key, prevLine []byte, hadPrev, fromCarry bool) error {
	key, err := bed.KeyOfLine(line)
	if err != nil {
		return fmt.Errorf("run %d: %w", c.idx, err)
	}
	if hadPrev && compareLineKeys(key, line, prevKey, prevLine) < 0 {
		return fmt.Errorf("run %d is not sorted", c.idx)
	}
	c.line, c.key, c.live = line, key, true
	if fromCarry {
		c.flip = 1 - c.flip
	}
	return nil
}

// streamCursorLess orders heap entries in exact genome order, then run
// index for deterministic merges — cursorLess over streamed cursors.
func streamCursorLess(a, b *streamCursor) bool {
	if c := compareLineKeys(a.key, a.line, b.key, b.line); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// mergeStreamedRuns k-way merges chunk-fed sorted runs, calling emit
// for each winning line in globally ascending order. emit must not
// retain line past its call (it may sit in a recycled carry buffer).
// charge, when non-nil, is called with each arriving chunk's size —
// the handler's per-chunk MergeBps accounting. When any run is a
// timing-only payload, every source is drained (still charged) and
// sized=true is returned with the total byte count; the merge's emits
// up to that point are void.
func mergeStreamedRuns(p *des.Proc, srcs []runSource, charge func(int64),
	emit func(key bed.Key, line []byte) error) (sized bool, total int64, err error) {
	cursors := make([]streamCursor, len(srcs))
	for i, src := range srcs {
		cursors[i].src, cursors[i].proc, cursors[i].charge, cursors[i].idx = src, p, charge, i
	}
	h := make([]*streamCursor, 0, len(srcs))
	for i := range cursors {
		c := &cursors[i]
		if err := c.advance(); err != nil {
			if errors.Is(err, errSizedChunk) {
				return drainStreamedSized(p, cursors, charge)
			}
			return false, 0, err
		}
		if c.live {
			h = append(h, c)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownFunc(h, i, streamCursorLess)
	}
	for len(h) > 0 {
		c := h[0]
		if err := emit(c.key, c.line); err != nil {
			return false, 0, err
		}
		if err := c.advance(); err != nil {
			if errors.Is(err, errSizedChunk) {
				return drainStreamedSized(p, cursors, charge)
			}
			return false, 0, err
		}
		if !c.live {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDownFunc(h, 0, streamCursorLess)
		}
	}
	for i := range cursors {
		total += cursors[i].total
	}
	return false, total, nil
}

// drainStreamedSized consumes the rest of every source purely for byte
// accounting once a sized chunk voids the line merge, so the handler's
// CPU and transfer charges match the buffered path's.
func drainStreamedSized(p *des.Proc, cursors []streamCursor, charge func(int64)) (bool, int64, error) {
	var total int64
	for i := range cursors {
		c := &cursors[i]
		for {
			pl, err := c.src.next(p)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return true, 0, err
			}
			n := pl.Size()
			c.total += n
			if charge != nil {
				charge(n)
			}
		}
		total += c.total
	}
	return true, total, nil
}
