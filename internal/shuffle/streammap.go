package shuffle

// The streaming map path: instead of buffering a mapper's whole ranged
// GET before the first byte is partitioned, the map slice is consumed
// as a stream of chunks (objectstore.Client.GetStream), each chunk's
// complete lines fed into the runBuilder as they arrive — with the
// partial trailing line carried across chunk boundaries — so parsing,
// key packing, and partition routing overlap the remaining transfer.
// The per-partition radix sort (runBuilder.Finish) is the only
// post-transfer work, matching the planner's overlap model
// max(transfer, partitionCPU) + sort.

import (
	"bytes"
	"errors"
	"io"

	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// mapSortShare is the fraction of the map phase's lumped CPU budget
// spent in the post-stream radix sort of the partitions — the one leg
// that cannot overlap the transfer because it needs every record
// routed first. The remaining 4/5 is the per-chunk parse+route+append
// work, a 4:1 time split matching the measured data-plane benchmarks
// (the radix finish runs ~4x faster than the full parse+route pass
// over the same bytes).
const mapSortShare = 0.2

// MapStreamRates splits the lumped partition throughput (the
// calibrated "parse + route + serialize + sort" rate specs and
// profiles carry) into the streaming and post-stream legs:
// 1/partitionBps = 1/streamBps + 1/sortBps, with the sort taking
// mapSortShare of the total time. Shared by the execution path and
// every predictor, so the modeled overlap and the simulated overlap
// agree by construction.
func MapStreamRates(partitionBps float64) (streamBps, sortBps float64) {
	if partitionBps <= 0 {
		return 0, 0
	}
	return partitionBps / (1 - mapSortShare), partitionBps / mapSortShare
}

// lineFeeder splits streamed chunks into complete lines and feeds the
// slice's owned ones to fn, replicating partitionRaw's ownership rules
// incrementally: lines whose global start position is inside
// [offset, limit) belong to this mapper; a partial trailing line is
// carried across chunk boundaries; blank lines are skipped; the
// unterminated final line (no trailing newline at stream end) is
// flushed by finish. fn must not retain the line slice past its call.
type lineFeeder struct {
	fn    func(line []byte) error
	pos   int64 // global offset of the next unseen stream byte
	limit int64 // lines starting at or past this are the next mapper's
	// skipFirst drops bytes through the first newline: the stream
	// begins one byte before the slice to decide first-line ownership,
	// and everything up to that newline is the predecessor's line.
	skipFirst bool
	carry     []byte // partial line awaiting its terminator
	done      bool   // a line start at/past limit was seen: all owned lines are in
}

// feed consumes one chunk. After it returns with f.done set, the
// caller can stop reading the stream: every owned line has been fed.
func (f *lineFeeder) feed(chunk []byte) error {
	// Every line starting inside this chunk starts below the limit when
	// the chunk itself ends below it — the common case for all but a
	// mapper's final chunks — so the per-line ownership check can be
	// skipped wholesale.
	checkLimit := f.pos+int64(len(chunk)) > f.limit
	for len(chunk) > 0 && !f.done {
		if f.skipFirst {
			nl := bytes.IndexByte(chunk, '\n')
			if nl < 0 {
				f.pos += int64(len(chunk))
				return nil
			}
			f.pos += int64(nl) + 1
			chunk = chunk[nl+1:]
			f.skipFirst = false
			continue
		}
		nl := bytes.IndexByte(chunk, '\n')
		if nl < 0 {
			f.carry = append(f.carry, chunk...)
			f.pos += int64(len(chunk))
			return nil
		}
		if checkLimit && f.pos-int64(len(f.carry)) >= f.limit {
			f.done = true
			return nil
		}
		line := chunk[:nl]
		if len(f.carry) > 0 {
			f.carry = append(f.carry, chunk[:nl]...)
			line = f.carry
		}
		f.pos += int64(nl) + 1
		chunk = chunk[nl+1:]
		if len(bytes.TrimSpace(line)) != 0 {
			if err := f.fn(line); err != nil {
				return err
			}
		}
		if len(f.carry) > 0 {
			f.carry = f.carry[:0]
		}
	}
	return nil
}

// finish flushes the unterminated final line once the stream ends.
func (f *lineFeeder) finish() error {
	if f.skipFirst {
		// The whole stream was one line with no start inside the slice —
		// the same condition the buffered path reports.
		return errNoLineStart
	}
	if f.done || len(f.carry) == 0 {
		return nil
	}
	if f.pos-int64(len(f.carry)) >= f.limit {
		return nil
	}
	line := f.carry
	f.carry = f.carry[:0]
	if len(bytes.TrimSpace(line)) == 0 {
		return nil
	}
	return f.fn(line)
}

// mapRead is the input-slice geometry shared by the map tasks.
type mapRead struct {
	Bucket, Key    string
	Offset, Length int64
	TotalSize      int64
	ChunkBytes     int64
	PartitionBps   float64
}

// span returns the byte range a mapper actually reads: one byte before
// the slice (to decide first-line ownership) through the overscan that
// completes its final line, clipped to the object.
func (r mapRead) span() (readOff, readLen int64, prefixByte bool) {
	readOff = r.Offset
	if readOff > 0 {
		readOff--
		prefixByte = true
	}
	readLen = r.Offset + r.Length + overscan - readOff
	if readOff+readLen > r.TotalSize {
		readLen = r.TotalSize - readOff
	}
	return readOff, readLen, prefixByte
}

// consumeMapStream streams the map slice into a runBuilder, charging
// the per-chunk partition CPU (at the streaming rate) as each chunk
// lands and the post-stream sort once the transfer is done. It returns
// the finished sorted runs, or sized=true when the object is a
// timing-only payload (the caller writes even-split sized partitions;
// the CPU has already been charged either way).
func consumeMapStream(ctx *faas.Ctx, r mapRead, workers int, bounds []Boundary) (parts [][]byte, sized bool, err error) {
	readOff, readLen, prefixByte := r.span()
	st, err := ctx.Store.GetStream(ctx.Proc, r.Bucket, r.Key, readOff, readLen,
		objectstore.StreamOptions{ChunkBytes: AdaptiveChunkBytes(r.ChunkBytes, r.Length)})
	if err != nil {
		return nil, false, err
	}
	defer st.Close()

	streamBps, sortBps := MapStreamRates(r.PartitionBps)
	builder := newRunBuilder(workers, bounds)
	builder.sizeHint(int(readLen))
	feeder := &lineFeeder{
		fn:        builder.Add,
		pos:       readOff,
		limit:     r.Offset + r.Length,
		skipFirst: prefixByte,
	}
	// The CPU budget keeps the total partition charge at exactly
	// Length/PartitionBps — overscan bytes are transferred but their
	// lines belong to the next mapper.
	budget := r.Length
	for {
		pl, err := st.Next(ctx.Proc)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, false, err
		}
		if raw, real := pl.Bytes(); real {
			if err := feeder.feed(raw); err != nil {
				return nil, false, err
			}
		} else {
			sized = true
		}
		charge := pl.Size()
		if charge > budget {
			charge = budget
		}
		budget -= charge
		ctx.ComputeBytes(charge, streamBps)
		if feeder.done {
			break // every owned line is in; abandon the rest of the range
		}
	}
	if !sized {
		if err := feeder.finish(); err != nil {
			return nil, false, err
		}
	}
	// The per-partition radix sort is the only post-transfer work.
	ctx.ComputeBytes(r.Length, sortBps)
	if sized {
		return nil, true, nil
	}
	return builder.Finish(), false, nil
}
