package shuffle

import (
	"testing"
	"testing/quick"
	"time"
)

func testProfile() StoreProfile {
	return StoreProfile{
		RequestLatency:     15 * time.Millisecond,
		PerConnBandwidth:   100e6,
		AggregateBandwidth: 40e9,
		ReadOpsPerSec:      3000,
		WriteOpsPerSec:     1500,
	}
}

func testInput(bytes int64) PlanInput {
	return PlanInput{
		DataBytes:      bytes,
		MaxWorkers:     128,
		WorkerMemBytes: 2 << 30,
		Startup:        time.Second,
	}
}

func TestPredictUShape(t *testing.T) {
	in := testInput(3500e6)
	sp := testProfile()
	few := Predict(1, in, sp).Predicted
	opt, err := Optimize(in, sp)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	many := Predict(128, in, sp).Predicted
	if opt.Predicted >= few {
		t.Fatalf("optimum %v not better than 1 worker %v", opt.Predicted, few)
	}
	if opt.Predicted >= many {
		t.Fatalf("optimum %v not better than 128 workers %v", opt.Predicted, many)
	}
	if opt.Workers <= 1 || opt.Workers >= 128 {
		t.Fatalf("optimum at boundary: %d workers", opt.Workers)
	}
	t.Logf("3.5GB: optimum %d workers, predicted %v (1w: %v, 128w: %v)",
		opt.Workers, opt.Predicted, few, many)
}

func TestOptimizeRespectsMemoryFloor(t *testing.T) {
	in := testInput(3500e6)
	in.WorkerMemBytes = 512 << 20 // 512MB functions, 60% usable
	sp := testProfile()
	plan, err := Optimize(in, sp)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	minW := MinWorkersForMemory(in)
	if minW < 11 {
		t.Fatalf("MinWorkersForMemory = %d, want >= 11 for 3.5GB over 307MB usable", minW)
	}
	if plan.Workers < minW {
		t.Fatalf("plan %d workers below memory floor %d", plan.Workers, minW)
	}
	if plan.MinWorkers != minW {
		t.Fatalf("plan.MinWorkers = %d, want %d", plan.MinWorkers, minW)
	}
}

func TestOptimizeErrorWhenMemoryImpossible(t *testing.T) {
	in := testInput(1 << 40) // 1 TiB
	in.MaxWorkers = 4
	in.WorkerMemBytes = 1 << 30
	if _, err := Optimize(in, testProfile()); err == nil {
		t.Fatal("impossible memory constraint accepted")
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	if _, err := Optimize(testInput(0), testProfile()); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := Optimize(testInput(100), StoreProfile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestOptimalWorkersGrowWithData(t *testing.T) {
	sp := testProfile()
	small, err := Optimize(testInput(200e6), sp)
	if err != nil {
		t.Fatalf("Optimize small: %v", err)
	}
	large, err := Optimize(testInput(8000e6), sp)
	if err != nil {
		t.Fatalf("Optimize large: %v", err)
	}
	if small.Workers >= large.Workers {
		t.Fatalf("optimal workers: small=%d >= large=%d; planner not scaling",
			small.Workers, large.Workers)
	}
}

func TestPredictBreakdownSumsToTotal(t *testing.T) {
	p := Predict(8, testInput(3500e6), testProfile())
	sum := p.Startup + p.Phase1IO + p.Phase1CPU + p.Phase2IO + p.Phase2CPU
	if sum != p.Predicted {
		t.Fatalf("breakdown sum %v != predicted %v", sum, p.Predicted)
	}
}

func TestSweepMonotoneAroundOptimum(t *testing.T) {
	in := testInput(3500e6)
	sp := testProfile()
	pts := Sweep(1, 64, in, sp)
	if len(pts) != 64 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	opt, err := Optimize(in, sp)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for _, pt := range pts {
		if pt.Predicted < opt.Predicted && pt.Workers <= in.MaxWorkers {
			t.Fatalf("sweep found better point (%d workers, %v) than optimizer (%d, %v)",
				pt.Workers, pt.Predicted, opt.Workers, opt.Predicted)
		}
	}
}

func TestPropertyPredictPositive(t *testing.T) {
	sp := testProfile()
	f := func(dataSeed uint32, wSeed uint8) bool {
		data := int64(dataSeed)%int64(10e9) + 1
		w := int(wSeed)%200 + 1
		p := Predict(w, testInput(data), sp)
		return p.Predicted > 0 &&
			p.Phase1IO >= 0 && p.Phase2IO >= 0 &&
			p.Phase1CPU >= 0 && p.Phase2CPU >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOptimizeNeverWorseThanFixed(t *testing.T) {
	sp := testProfile()
	f := func(dataSeed uint32, wSeed uint8) bool {
		data := int64(dataSeed)%int64(10e9) + 1e6
		in := testInput(data)
		opt, err := Optimize(in, sp)
		if err != nil {
			return false
		}
		w := int(wSeed)%in.MaxWorkers + 1
		if w < opt.MinWorkers {
			return true // fixed choice violates memory; not comparable
		}
		return opt.Predicted <= Predict(w, in, sp).Predicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
