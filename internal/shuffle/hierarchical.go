package shuffle

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// repartitionFn is the hierarchical operator's round-2 map function.
const repartitionFn = "shuffle/repartition"

// HierSpec describes a two-level (hierarchical) sort job. The one-level
// all-to-all moves w x w intermediate objects; with w workers in g
// groups the exchange becomes w*g objects in round 1 plus g*(w/g)^2 in
// round 2 — minimized near g = sqrt(w) at ~2*w^1.5 total. That trades
// an extra pass of data through the store for far fewer requests, which
// wins once the service's per-request latency and ops throttle dominate
// (large w) — the design extension Primula's line of work (Locus,
// Pocket) motivates.
type HierSpec struct {
	// Spec carries the common job parameters. Workers must be explicit
	// (or left 0 for the hierarchical planner).
	Spec
	// Groups is the number of round-1 groups; it must divide Workers.
	// 0 picks the divisor of Workers nearest sqrt(Workers).
	Groups int
}

// HierResult reports a completed hierarchical sort.
type HierResult struct {
	Result
	// Groups is the group count used (1 degenerates to a relabeled
	// one-level exchange).
	Groups int
	// Round1 and Round2 are the two exchange passes' durations; they
	// refine Result.Phase1/Phase2 (Phase1 = Round1, Phase2 = Round2).
	Round1, Round2 time.Duration
}

// EnableHierarchical registers the round-2 repartition function; call
// once per operator before SortHierarchical. Split from NewOperator so
// existing single-level deployments register nothing extra.
func (op *Operator) EnableHierarchical() error {
	if err := op.platform.Register(repartitionFn, repartitionHandler); err != nil {
		return err
	}
	op.hierarchical = true
	return nil
}

// autoGroups picks the divisor of w nearest sqrt(w). Primes degrade to
// 1 (a single group: one coarse pass then a full sort of each range).
func autoGroups(w int) int {
	if w <= 1 {
		return 1
	}
	root := math.Sqrt(float64(w))
	best, bestDist := 1, math.Inf(1)
	for g := 1; g <= w; g++ {
		if w%g != 0 {
			continue
		}
		if d := math.Abs(float64(g) - root); d < bestDist {
			best, bestDist = g, d
		}
	}
	return best
}

// SortHierarchical runs the two-level shuffle, blocking p until the
// sorted output is in place. Output parts are globally ordered across
// groups: group j's k parts are parts j*k .. j*k+k-1.
func (op *Operator) SortHierarchical(p *des.Proc, spec HierSpec) (HierResult, error) {
	if err := spec.Spec.validate(); err != nil {
		return HierResult{}, err
	}
	if spec.ScratchBucket == "" {
		spec.ScratchBucket = spec.OutputBucket
	}
	if spec.SampleBytes <= 0 {
		spec.SampleBytes = defaultSampleBytes
	}
	jobID := fmt.Sprintf("hiershuffle-%04d", op.seq.Add(1))
	client := objectstore.NewClient(op.store)

	head, err := client.Head(p, spec.InputBucket, spec.InputKey)
	if err != nil {
		return HierResult{}, fmt.Errorf("shuffle: stat input: %w", err)
	}
	size := head.Size
	if size == 0 {
		return HierResult{}, errors.New("shuffle: empty input")
	}

	res := HierResult{}
	res.TotalBytes = size

	workers := spec.Workers
	if workers == 0 {
		plan, err := Optimize(PlanInput{
			DataBytes:      size,
			MaxWorkers:     spec.MaxWorkers,
			WorkerMemBytes: spec.WorkerMemBytes,
			PartitionBps:   spec.PartitionBps,
			MergeBps:       spec.MergeBps,
			Startup:        spec.Startup,
		}, ProfileOf(op.store.Config()))
		if err != nil {
			return HierResult{}, err
		}
		workers = plan.Workers
		res.Planned = plan
		res.AutoPlanned = true
	}
	groups := spec.Groups
	if groups <= 0 {
		groups = autoGroups(workers)
	}
	if groups > workers || workers%groups != 0 {
		return HierResult{}, fmt.Errorf(
			"shuffle: %d groups do not divide %d workers", groups, workers)
	}
	k := workers / groups // parts (and round-2 workers) per group
	res.Workers = workers
	res.Groups = groups

	// One sample yields both boundary levels: global fine boundaries
	// b_1..b_{w-1}; coarse boundaries are every k-th; fine-within-group
	// are the k-1 between consecutive coarse ones.
	sampleStart := p.Now()
	fine, err := sampleBoundaries(p, client, spec.Spec, size, workers)
	if err != nil {
		return HierResult{}, err
	}
	res.Sample = p.Now() - sampleStart
	var coarse []Boundary
	fineFor := func(group int) []Boundary { return nil }
	if fine != nil {
		coarse = make([]Boundary, groups-1)
		for j := 1; j < groups; j++ {
			coarse[j-1] = fine[j*k-1]
		}
		fineFor = func(group int) []Boundary {
			lo := group * k // b_{group*k+1} is fine[group*k]
			return fine[lo : lo+k-1]
		}
	}

	// Round 1: w mappers spray their slice into g coarse ranges.
	r1Start := p.Now()
	ranges := splitRanges(size, workers)
	r1JobID := jobID + "-r1"
	r1Inputs := make([]any, workers)
	for i := 0; i < workers; i++ {
		r1Inputs[i] = &mapTask{
			JobID:         r1JobID,
			InputBucket:   spec.InputBucket,
			InputKey:      spec.InputKey,
			Offset:        ranges[i].off,
			Length:        ranges[i].n,
			TotalSize:     size,
			Workers:       groups,
			MapIndex:      i,
			Boundaries:    coarse,
			ScratchBucket: spec.ScratchBucket,
			PartitionBps:  spec.PartitionBps,
			ChunkBytes:    spec.StreamChunkBytes,
			Buffered:      spec.BufferedRead,
		}
	}
	if _, err := op.mapPhase(p, mapFn, r1Inputs, spec.Spec); err != nil {
		return HierResult{}, fmt.Errorf("shuffle: round 1: %w", err)
	}
	res.Round1 = p.Now() - r1Start
	res.Phase1 = res.Round1

	// Round 2: per group, k repartitioners each gather g round-1
	// objects, split them by the group's fine boundaries, and k
	// reducers merge into globally-indexed output parts.
	r2Start := p.Now()
	repInputs := make([]any, 0, workers)
	for g := 0; g < groups; g++ {
		groupJob := fmt.Sprintf("%s-r2-g%04d", jobID, g)
		for j := 0; j < k; j++ {
			// Worker j of group g gathers round-1 partitions from
			// mappers j*g .. (j+1)*g-1 (an even split of the w objects).
			srcs := make([]string, 0, groups)
			for m := j * groups; m < (j+1)*groups; m++ {
				srcs = append(srcs, partKey(r1JobID, m, g))
			}
			repInputs = append(repInputs, &repartitionTask{
				JobID:         groupJob,
				ScratchBucket: spec.ScratchBucket,
				SourceBucket:  spec.ScratchBucket,
				SourceKeys:    srcs,
				Workers:       k,
				MapIndex:      j,
				Boundaries:    fineFor(g),
				MergeBps:      spec.MergeBps,
				Cleanup:       spec.CleanupScratch,
				SliceBytes:    size / int64(workers),
				ChunkBytes:    spec.StreamChunkBytes,
				Buffered:      spec.BufferedRead,
			})
		}
	}
	if _, err := op.mapPhase(p, repartitionFn, repInputs, spec.Spec); err != nil {
		return HierResult{}, fmt.Errorf("shuffle: round 2 repartition: %w", err)
	}
	redInputs := make([]any, 0, workers)
	for g := 0; g < groups; g++ {
		groupJob := fmt.Sprintf("%s-r2-g%04d", jobID, g)
		for r := 0; r < k; r++ {
			redInputs = append(redInputs, &reduceTask{
				JobID:         groupJob,
				ScratchBucket: spec.ScratchBucket,
				Workers:       k,
				ReduceIndex:   r,
				OutputIndex:   g*k + r,
				OutputBucket:  spec.OutputBucket,
				OutputPrefix:  spec.OutputPrefix,
				MergeBps:      spec.MergeBps,
				Cleanup:       spec.CleanupScratch,
				SliceBytes:    size / int64(workers),
				ChunkBytes:    spec.StreamChunkBytes,
				Buffered:      spec.BufferedRead,
			})
		}
	}
	outs, err := op.mapPhase(p, reduceFn, redInputs, spec.Spec)
	if err != nil {
		return HierResult{}, fmt.Errorf("shuffle: round 2 reduce: %w", err)
	}
	res.Round2 = p.Now() - r2Start
	res.Phase2 = res.Round2
	for _, o := range outs {
		key, ok := o.(string)
		if !ok {
			return HierResult{}, fmt.Errorf("shuffle: reduce returned %T, want string key", o)
		}
		res.OutputKeys = append(res.OutputKeys, key)
	}
	sort.Strings(res.OutputKeys) // part-%04d names sort into global order
	return res, nil
}

// repartitionTask is the input of one round-2 repartition activation.
type repartitionTask struct {
	JobID         string
	ScratchBucket string
	SourceBucket  string
	SourceKeys    []string
	Workers       int
	MapIndex      int
	Boundaries    []Boundary
	MergeBps      float64
	Cleanup       bool
	// SliceBytes is the planned per-worker gather volume, sizing the
	// adaptive stream chunk; ChunkBytes overrides it when set.
	SliceBytes int64
	ChunkBytes int64
	// Buffered restores the pre-streaming gather (the A/B baseline).
	Buffered bool
}

// repartitionHandler gathers its source objects — round-1 partitions,
// which are already sorted runs — and streams a k-way cursor merge
// over them, routing each line to its (fine) boundary partition as it
// is emitted: merge order makes every output partition a sorted run by
// construction, so round 2 re-sorts nothing. (The predecessor routed
// lines one at a time and rebuilt each partition as a run via a
// per-partition sort, discarding the round-1 sortedness it had already
// paid for.) Only the key columns of each line are ever parsed; bytes
// are copied verbatim.
func repartitionHandler(ctx *faas.Ctx, input any) (any, error) {
	task, ok := input.(*repartitionTask)
	if !ok {
		return nil, fmt.Errorf("shuffle: repartition input %T", input)
	}
	var (
		consumed []string
		parts    [][]byte
		total    int64
		anySized bool
	)
	if task.Buffered {
		var runs [][]byte
		for _, key := range task.SourceKeys {
			pl, err := ctx.Store.Get(ctx.Proc, task.SourceBucket, key)
			if err != nil {
				return nil, fmt.Errorf("shuffle: repartition %d fetch %s: %w", task.MapIndex, key, err)
			}
			if task.Cleanup {
				consumed = append(consumed, key)
			}
			total += pl.Size()
			if raw, real := pl.Bytes(); real {
				runs = append(runs, raw)
			} else {
				anySized = true
			}
		}
		ctx.ComputeBytes(total, task.MergeBps)
		if !anySized {
			var err error
			parts, err = mergeSplit(runs, task.Workers, task.Boundaries)
			if err != nil {
				return nil, fmt.Errorf("shuffle: repartition %d merge: %w", task.MapIndex, err)
			}
		}
	} else {
		// Streamed gather: open a chunked stream per source run and
		// merge-split as the chunks arrive, so the g transfers overlap
		// each other and the merge CPU. The merge emits lines in
		// ascending order, so the boundary routing cursor only moves
		// right — every output partition is a sorted run by construction.
		perRun := task.SliceBytes
		if len(task.SourceKeys) > 0 {
			perRun /= int64(len(task.SourceKeys))
		}
		inChunk := AdaptiveChunkBytes(task.ChunkBytes, perRun)
		srcs := make([]runSource, 0, len(task.SourceKeys))
		closeSrcs := func() {
			for _, s := range srcs {
				s.close()
			}
		}
		for _, key := range task.SourceKeys {
			cs, err := ctx.Store.GetStream(ctx.Proc, task.SourceBucket, key, 0, -1,
				objectstore.StreamOptions{ChunkBytes: inChunk})
			if err != nil {
				closeSrcs()
				return nil, fmt.Errorf("shuffle: repartition %d open %s: %w", task.MapIndex, key, err)
			}
			srcs = append(srcs, clientStreamSource{cs})
			if task.Cleanup {
				consumed = append(consumed, key)
			}
		}
		parts = make([][]byte, task.Workers)
		hint := 0
		if task.Workers > 0 && task.SliceBytes > 0 {
			hint = int(task.SliceBytes)/task.Workers + int(task.SliceBytes)/(4*task.Workers)
		}
		cur := 0
		emit := func(key bed.Key, line []byte) error {
			for cur < len(task.Boundaries) &&
				bed.CompareKeyName(task.Boundaries[cur].Key, task.Boundaries[cur].Name, key, chromOf(line)) <= 0 {
				cur++
			}
			if parts[cur] == nil {
				parts[cur] = make([]byte, 0, hint)
			}
			parts[cur] = append(parts[cur], line...)
			parts[cur] = append(parts[cur], '\n')
			return nil
		}
		charge := func(n int64) { ctx.ComputeBytes(n, task.MergeBps) }
		var err error
		anySized, total, err = mergeStreamedRuns(ctx.Proc, srcs, charge, emit)
		closeSrcs()
		if err != nil {
			return nil, fmt.Errorf("shuffle: repartition %d merge: %w", task.MapIndex, err)
		}
	}

	if anySized {
		// Sized mode: even split of the gathered volume.
		base := total / int64(task.Workers)
		rem := total % int64(task.Workers)
		for r := 0; r < task.Workers; r++ {
			n := base
			if int64(r) < rem {
				n++
			}
			if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
				partKey(task.JobID, task.MapIndex, r), payload.Sized(n)); err != nil {
				return nil, fmt.Errorf("shuffle: repartition %d write %d: %w", task.MapIndex, r, err)
			}
		}
	} else {
		for r := 0; r < task.Workers; r++ {
			if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
				partKey(task.JobID, task.MapIndex, r), payload.RealNoCopy(parts[r])); err != nil {
				return nil, fmt.Errorf("shuffle: repartition %d write %d: %w", task.MapIndex, r, err)
			}
		}
	}
	// Source deletes are deferred until every partition this worker
	// produces is durable, so a MaxRetries re-attempt can re-read its
	// inputs — the same ordering reduceHandler uses.
	for _, key := range consumed {
		if err := ctx.Store.Delete(ctx.Proc, task.SourceBucket, key); err != nil {
			return nil, fmt.Errorf("shuffle: repartition %d free %s: %w", task.MapIndex, key, err)
		}
	}
	return nil, nil
}

// PredictHierarchical models the two-level shuffle's latency with w
// workers in g groups, mirroring Predict's structure: three waves
// (spray, repartition, merge), each moving data/w per worker, with the
// request terms shrunk from w per worker to g or w/g per worker.
func PredictHierarchical(w, g int, in PlanInput, sp StoreProfile) Plan {
	in = in.withDefaults()
	d := float64(in.DataBytes)
	fw := float64(w)
	fg := float64(g)
	k := fw / fg
	perWorker := d / fw

	rate := sp.PerConnBandwidth
	if sp.AggregateBandwidth > 0 {
		if agg := sp.AggregateBandwidth / fw; agg < rate {
			rate = agg
		}
	}
	lat := sp.RequestLatency.Seconds()
	toDur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// Round 1: stream the slice — transfer overlaps the partition CPU,
	// with only the per-partition sort after it — then write g
	// partitions (w*g writes total).
	streamBps, sortBps := MapStreamRates(in.PartitionBps)
	reqR1 := math.Max(fg*lat, fw*fg/sp.WriteOpsPerSec)
	ioR1 := math.Max(perWorker/rate, perWorker/streamBps) + perWorker/rate + reqR1 + lat
	cpuR1 := perWorker / sortBps

	// Reduce-side streams run their fan-in concurrently; each leg is
	// capped by its connection count or the worker's aggregate share.
	aggShare := math.Inf(1)
	if sp.AggregateBandwidth > 0 {
		aggShare = sp.AggregateBandwidth / fw
	}

	// Round 2a: stream g sorted runs into the merge-split cursor — the
	// gather overlaps the cursor's CPU (it re-sorts nothing, so the CPU
	// leg runs at the merge rate) — then write k partitions buffered.
	inR2a := math.Min(fg*sp.PerConnBandwidth, aggShare)
	reqR2a := math.Max((fg+k)*lat, (fw*fg+fw*k)/sp.ReadOpsPerSec)
	ioR2a := math.Max(perWorker/inR2a, perWorker/in.MergeBps) + perWorker/rate + reqR2a
	cpuR2a := 0.0

	// Round 2b: stream k partitions into the final merge while the
	// output leaves through the multipart PutStream writer — the full
	// max(in, merge, out) overlap.
	inR2b := math.Min(k*sp.PerConnBandwidth, aggShare)
	outR2b := math.Min(float64(objectstore.DefaultPutConns)*sp.PerConnBandwidth, aggShare)
	parts := float64(objectstore.PutStreamRequests(int64(perWorker), AdaptiveChunkBytes(0, int64(perWorker))))
	reqR2b := math.Max(k*lat, math.Max(fw*k/sp.ReadOpsPerSec, fw*parts/sp.WriteOpsPerSec))
	ioR2b := math.Max(perWorker/inR2b, math.Max(perWorker/in.MergeBps, perWorker/outR2b)) +
		reqR2b + lat
	cpuR2b := 0.0

	p := Plan{
		Workers:   w,
		Startup:   in.Startup,
		Phase1IO:  toDur(ioR1 + ioR2a),
		Phase1CPU: toDur(cpuR1 + cpuR2a),
		Phase2IO:  toDur(ioR2b),
		Phase2CPU: toDur(cpuR2b),
	}
	p.Predicted = p.Startup + p.Phase1IO + p.Phase1CPU + p.Phase2IO + p.Phase2CPU
	return p
}

// HierPlan is the hierarchical planner's decision.
type HierPlan struct {
	// Plan is the chosen configuration's prediction.
	Plan
	// Groups is the chosen group count (1 = stay one-level).
	Groups int
	// OneLevel is the best single-level plan, for comparison.
	OneLevel Plan
}

// OptimizeHierarchical searches worker counts and divisor group counts,
// returning the best two-level configuration alongside the best
// one-level plan. Callers pick whichever Predicted is lower (the
// hierarchy wins only when per-request costs dominate).
func OptimizeHierarchical(in PlanInput, sp StoreProfile) (HierPlan, error) {
	one, err := Optimize(in, sp)
	if err != nil {
		return HierPlan{}, err
	}
	in = in.withDefaults()
	minW := MinWorkersForMemory(in)
	best := HierPlan{OneLevel: one}
	for w := minW; w <= in.MaxWorkers; w++ {
		for g := 2; g <= w; g++ {
			if w%g != 0 {
				continue
			}
			p := PredictHierarchical(w, g, in, sp)
			if best.Groups == 0 || p.Predicted < best.Plan.Predicted {
				best.Plan = p
				best.Groups = g
			}
		}
	}
	if best.Groups == 0 {
		// No composite worker count in range: stay one-level.
		best.Plan = one
		best.Groups = 1
	}
	best.MinWorkers = minW
	return best, nil
}
