package shuffle

import (
	"errors"
	"testing"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/memcache"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// cacheTestConfig is a fast small-node cache profile for logic tests.
func cacheTestConfig() memcache.Config {
	return memcache.Config{
		NodeMemoryBytes:  64 << 20,
		RequestLatency:   100 * time.Microsecond,
		PerConnBandwidth: 1e9,
		NodeBandwidth:    0,
		NodeOpsPerSec:    1e6,
		OpsBurst:         1e6,
		ProvisionTime:    2 * time.Second,
		NodeHourlyUSD:    0.3,
	}
}

// newCacheRig extends the operator rig with a cache provisioner and
// operator on the same platform.
func newCacheRig(t *testing.T) (*testRig, *memcache.Provisioner, *CacheOperator) {
	t.Helper()
	rig := newRig(t)
	prov, err := memcache.NewProvisioner(rig.sim, cacheTestConfig())
	if err != nil {
		t.Fatalf("cache provisioner: %v", err)
	}
	op, err := NewCacheOperator(rig.pf, rig.store, prov)
	if err != nil {
		t.Fatalf("cache operator: %v", err)
	}
	return rig, prov, op
}

func cacheSpec(workers int) CacheSpec {
	return CacheSpec{Spec: sortSpec(workers)}
}

func runCacheSort(t *testing.T, rig *testRig, op *CacheOperator, recs []bed.Record, spec CacheSpec) (CacheResult, []bed.Record) {
	t.Helper()
	var res CacheResult
	var sorted []bed.Record
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, sortErr = op.Sort(p, spec)
		if sortErr != nil {
			return
		}
		sorted = rig.fetchSorted(t, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("cache Sort: %v", sortErr)
	}
	return res, sorted
}

func TestCacheSortProducesGlobalOrder(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 5000, Seed: 11, Sorted: false})
	res, sorted := runCacheSort(t, rig, op, recs, cacheSpec(8))
	if res.Workers != 8 || len(res.OutputKeys) != 8 {
		t.Fatalf("workers/parts = %d/%d, want 8/8", res.Workers, len(res.OutputKeys))
	}
	if len(sorted) != len(recs) {
		t.Fatalf("sorted count = %d, want %d", len(sorted), len(recs))
	}
	if !bed.IsSorted(sorted) {
		t.Fatal("concatenated output parts are not globally sorted")
	}
}

func TestCacheSortMatchesObjectStorageSort(t *testing.T) {
	// The two operators must produce identical sorted output; only the
	// exchange substrate differs.
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 12, Sorted: false})

	cosRig := newRig(t)
	_, viaCOS := runSort(t, cosRig, recs, sortSpec(6))

	cacheRig, _, cacheOp := newCacheRig(t)
	_, viaCache := runCacheSort(t, cacheRig, cacheOp, recs, cacheSpec(6))

	if len(viaCOS) != len(viaCache) {
		t.Fatalf("lengths differ: %d vs %d", len(viaCOS), len(viaCache))
	}
	for i := range viaCOS {
		if viaCOS[i] != viaCache[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, viaCOS[i], viaCache[i])
		}
	}
}

func TestCacheSortPreservesRecords(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 13, Sorted: false})
	_, sorted := runCacheSort(t, rig, op, recs, cacheSpec(5))
	want := recordMultiset(recs)
	got := recordMultiset(sorted)
	if len(want) != len(got) {
		t.Fatalf("distinct records: got %d, want %d", len(got), len(want))
	}
	for r, n := range want {
		if got[r] != n {
			t.Fatalf("record %+v count = %d, want %d", r, got[r], n)
		}
	}
}

func TestCacheSortStopsClusterAndReportsCost(t *testing.T) {
	rig, prov, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 14, Sorted: false})
	res, _ := runCacheSort(t, rig, op, recs, cacheSpec(4))
	if res.CacheUSD <= 0 {
		t.Errorf("CacheUSD = %g, want > 0", res.CacheUSD)
	}
	clusters := prov.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if !clusters[0].Stopped() {
		t.Error("cluster left running after sort")
	}
	// All intermediates were deleted by the reducers.
	if used := clusters[0].UsedBytes(); used != 0 {
		t.Errorf("cache still holds %d bytes after sort", used)
	}
}

func TestCacheSortColdPaysProvisioning(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 500, Seed: 15, Sorted: false})
	res, _ := runCacheSort(t, rig, op, recs, cacheSpec(2))
	if res.Provision < 2*time.Second {
		t.Errorf("cold Provision = %v, want >= 2s spin-up", res.Provision)
	}
}

func TestCacheSortWarmSkipsProvisioning(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 500, Seed: 15, Sorted: false})
	spec := cacheSpec(2)
	spec.Warm = true
	res, sorted := runCacheSort(t, rig, op, recs, spec)
	if res.Provision != 0 {
		t.Errorf("warm Provision = %v, want 0", res.Provision)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("warm sort incorrect")
	}
}

func TestCacheSortAutoSizesCluster(t *testing.T) {
	rig, _, op := newCacheRig(t)
	var res CacheResult
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		// 200 MB over 64 MB nodes at 1.3 headroom: ceil(260/64) = 5 nodes.
		if err := c.Put(p, "in", "data.bed", payload.Sized(200<<20)); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		res, sortErr = op.Sort(p, cacheSpec(8))
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("Sort: %v", sortErr)
	}
	if res.Nodes != 5 {
		t.Errorf("auto-sized Nodes = %d, want 5", res.Nodes)
	}
	if res.PeakCacheBytes != 200<<20 {
		t.Errorf("PeakCacheBytes = %d, want input size", res.PeakCacheBytes)
	}
}

func TestCacheSortFixedNodes(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 16, Sorted: false})
	spec := cacheSpec(4)
	spec.Nodes = 3
	res, _ := runCacheSort(t, rig, op, recs, spec)
	if res.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", res.Nodes)
	}
}

func TestCacheSortAutoPlansWorkers(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 17, Sorted: false})
	spec := cacheSpec(0)
	spec.MaxWorkers = 32
	spec.WorkerMemBytes = 2 << 30
	res, sorted := runCacheSort(t, rig, op, recs, spec)
	if !res.AutoPlanned {
		t.Fatal("AutoPlanned = false")
	}
	if res.Workers < 1 || res.Workers > 32 {
		t.Fatalf("planned workers = %d", res.Workers)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("auto-planned cache sort incorrect")
	}
}

func TestCacheSortSizedPayload(t *testing.T) {
	rig, _, op := newCacheRig(t)
	var res CacheResult
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		if err := c.Put(p, "in", "data.bed", payload.Sized(50<<20)); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		res, sortErr = op.Sort(p, cacheSpec(8))
		if sortErr != nil {
			return
		}
		var total int64
		for _, k := range res.OutputKeys {
			obj, err := c.Head(p, "out", k)
			if err != nil {
				t.Errorf("head %s: %v", k, err)
				return
			}
			total += obj.Size
		}
		if total != 50<<20 {
			t.Errorf("output bytes = %d, want %d", total, int64(50<<20))
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("Sort: %v", sortErr)
	}
	if res.Phase1 <= 0 || res.Phase2 <= 0 {
		t.Fatalf("phases not timed: %+v", res)
	}
}

func TestCacheSortEmptyInputFails(t *testing.T) {
	rig, _, op := newCacheRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		_ = c.Put(p, "in", "data.bed", payload.Real(nil))
		_, sortErr = op.Sort(p, cacheSpec(4))
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCacheSortValidatesSpec(t *testing.T) {
	rig, _, op := newCacheRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		_, sortErr = op.Sort(p, CacheSpec{Spec: Spec{OutputBucket: "out"}})
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestCacheOperatorNeedsProvisioner(t *testing.T) {
	rig := newRig(t)
	if _, err := NewCacheOperator(rig.pf, rig.store, nil); err == nil {
		t.Fatal("nil provisioner accepted")
	}
}

func TestCacheProfileScalesWithNodes(t *testing.T) {
	cfg := cacheTestConfig()
	cfg.NodeBandwidth = 1e9
	one := CacheProfile(cfg, 1)
	four := CacheProfile(cfg, 4)
	if four.AggregateBandwidth != 4*one.AggregateBandwidth {
		t.Errorf("aggregate bandwidth: 4 nodes = %g, 1 node = %g", four.AggregateBandwidth, one.AggregateBandwidth)
	}
	if four.ReadOpsPerSec != 4*one.ReadOpsPerSec {
		t.Errorf("read ops: 4 nodes = %g, 1 node = %g", four.ReadOpsPerSec, one.ReadOpsPerSec)
	}
	if got := CacheProfile(cfg, 0); got.ReadOpsPerSec != one.ReadOpsPerSec {
		t.Error("CacheProfile(0) should clamp to one node")
	}
}

func TestCacheSortBatchedGetsMatchAndAreFaster(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 18, Sorted: false})

	// The serial baseline is the buffered reduce path: the streamed
	// default fetches its runs over concurrent connections, which hides
	// the same per-request latencies MGet batches away.
	serialSpec := cacheSpec(8)
	serialSpec.BufferedRead = true
	serialRig, _, serialOp := newCacheRig(t)
	serialRes, serialSorted := runCacheSort(t, serialRig, serialOp, recs, serialSpec)

	batchRig, _, batchOp := newCacheRig(t)
	spec := cacheSpec(8)
	spec.BatchedGets = true
	batchRes, batchSorted := runCacheSort(t, batchRig, batchOp, recs, spec)

	if len(serialSorted) != len(batchSorted) {
		t.Fatalf("lengths differ: %d vs %d", len(serialSorted), len(batchSorted))
	}
	for i := range serialSorted {
		if serialSorted[i] != batchSorted[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// 8 reducers x 8 serial request latencies vs one per shard: the
	// batched reduce phase must be strictly faster.
	if batchRes.Phase2 >= serialRes.Phase2 {
		t.Errorf("batched phase2 %v not below serial %v", batchRes.Phase2, serialRes.Phase2)
	}
}

func TestCacheSortUndersizedClusterFails(t *testing.T) {
	// One 64 MB node cannot hold a 200 MB shuffle without eviction:
	// some map Set must fail with OOM, surfacing as a sort error.
	rig, _, op := newCacheRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		if err := c.Put(p, "in", "data.bed", payload.Sized(200<<20)); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		spec := cacheSpec(8)
		spec.Nodes = 1
		_, sortErr = op.Sort(p, spec)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("undersized cluster accepted")
	}
	if !errors.Is(sortErr, memcache.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory in chain", sortErr)
	}
}
