package shuffle

import (
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// scratchKeys lists leftover intermediate objects after a sort. The
// operators write intermediates under "<job id>/..." prefixes in the
// scratch bucket, distinct from the "sorted/" output prefix.
func scratchKeys(t *testing.T, rig *testRig, bucket string) []string {
	t.Helper()
	var keys []string
	rig.sim.Spawn("scan", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		all, err := c.ListAll(p, bucket, "")
		if err != nil {
			t.Errorf("list: %v", err)
			return
		}
		for _, k := range all {
			if len(k) >= 7 && k[:7] == "sorted/" {
				continue
			}
			keys = append(keys, k)
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("scan sim: %v", err)
	}
	return keys
}

func TestSortLeavesScratchByDefault(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 61, Sorted: false})
	_, sorted := runSort(t, rig, recs, sortSpec(4))
	if len(sorted) != len(recs) {
		t.Fatalf("sorted = %d", len(sorted))
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 16 {
		t.Fatalf("scratch objects = %d, want 4x4 left in place", len(got))
	}
}

func TestSortCleanupScratch(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 61, Sorted: false})
	spec := sortSpec(4)
	spec.CleanupScratch = true
	_, sorted := runSort(t, rig, recs, spec)
	if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
		t.Fatal("cleanup sort incorrect")
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(got), got)
	}
}

func TestHierSortCleanupScratch(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1200, Seed: 62, Sorted: false})
	spec := hierSpec(8, 4)
	spec.CleanupScratch = true
	_, sorted := runHierSort(t, rig, recs, spec)
	if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
		t.Fatal("cleanup hierarchical sort incorrect")
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(got), got)
	}
}

func TestCleanupRejectsSpeculation(t *testing.T) {
	spec := sortSpec(4)
	spec.CleanupScratch = true
	spec.Speculate = true
	if err := spec.validate(); err == nil {
		t.Fatal("CleanupScratch+Speculate accepted; duplicates re-read deleted partitions")
	}
}
