package shuffle

import (
	"testing"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// scratchKeys lists leftover intermediate objects after a sort. The
// operators write intermediates under "<job id>/..." prefixes in the
// scratch bucket, distinct from the "sorted/" output prefix.
func scratchKeys(t *testing.T, rig *testRig, bucket string) []string {
	t.Helper()
	var keys []string
	rig.sim.Spawn("scan", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		all, err := c.ListAll(p, bucket, "")
		if err != nil {
			t.Errorf("list: %v", err)
			return
		}
		for _, k := range all {
			if len(k) >= 7 && k[:7] == "sorted/" {
				continue
			}
			keys = append(keys, k)
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("scan sim: %v", err)
	}
	return keys
}

func TestSortLeavesScratchByDefault(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 61, Sorted: false})
	_, sorted := runSort(t, rig, recs, sortSpec(4))
	if len(sorted) != len(recs) {
		t.Fatalf("sorted = %d", len(sorted))
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 16 {
		t.Fatalf("scratch objects = %d, want 4x4 left in place", len(got))
	}
}

func TestSortCleanupScratch(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1000, Seed: 61, Sorted: false})
	spec := sortSpec(4)
	spec.CleanupScratch = true
	_, sorted := runSort(t, rig, recs, spec)
	if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
		t.Fatal("cleanup sort incorrect")
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(got), got)
	}
}

func TestHierSortCleanupScratch(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1200, Seed: 62, Sorted: false})
	spec := hierSpec(8, 4)
	spec.CleanupScratch = true
	_, sorted := runHierSort(t, rig, recs, spec)
	if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
		t.Fatal("cleanup hierarchical sort incorrect")
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(got), got)
	}
}

func TestCleanupRejectsSpeculation(t *testing.T) {
	spec := sortSpec(4)
	spec.CleanupScratch = true
	spec.Speculate = true
	if err := spec.validate(); err == nil {
		t.Fatal("CleanupScratch+Speculate accepted; duplicates re-read deleted partitions")
	}
}

// TestSortCleanupScratchWithRetries: CleanupScratch composed with
// MaxRetries used to share Speculate's non-idempotence hazard — a
// retried reducer re-fetching partitions a failed attempt had already
// deleted. Deletes are now deferred until after the output Put, so the
// combination must sort correctly under injected failures AND leave no
// scratch behind.
func TestSortCleanupScratchWithRetries(t *testing.T) {
	sim := des.New(9)
	store, err := objectstore.New(sim, objectstore.Config{
		RequestLatency:   time.Millisecond,
		PerConnBandwidth: 1e9,
		ReadOpsPerSec:    1e6,
		WriteOpsPerSec:   1e6,
		OpsBurst:         1e6,
	})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	pf, err := newFaultyPlatform(sim, store, 0.2)
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	op, err := NewOperator(pf, store)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	rig := &testRig{sim: sim, store: store, pf: pf, op: op}
	recs := bed.Generate(bed.GenConfig{Records: 1500, Seed: 63, Sorted: false})
	spec := sortSpec(4)
	spec.CleanupScratch = true
	spec.MaxRetries = 8
	_, sorted := runSort(t, rig, recs, spec)
	if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
		t.Fatal("cleanup+retries sort incorrect")
	}
	if got := scratchKeys(t, rig, "out"); len(got) != 0 {
		t.Fatalf("scratch objects = %d (%v), want 0", len(got), got)
	}
	if pf.Meter().Retries == 0 {
		t.Error("no retries metered at 20% failure rate; test exercised nothing")
	}
}
