package shuffle

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// feedChunks drives a lineFeeder over raw cut into the given chunk
// sizes (cycled), returning the finished partitions.
func feedChunks(t *testing.T, raw []byte, readOff int64, prefixByte bool, offset, length int64,
	workers int, bounds []Boundary, chunkSizes []int) [][]byte {
	t.Helper()
	builder := newRunBuilder(workers, bounds)
	builder.sizeHint(len(raw))
	f := &lineFeeder{fn: builder.Add, pos: readOff, limit: offset + length, skipFirst: prefixByte}
	pos, ci := 0, 0
	for pos < len(raw) && !f.done {
		n := chunkSizes[ci%len(chunkSizes)]
		ci++
		if pos+n > len(raw) {
			n = len(raw) - pos
		}
		if err := f.feed(raw[pos : pos+n]); err != nil {
			t.Fatalf("feed: %v", err)
		}
		pos += n
	}
	if err := f.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	return builder.Finish()
}

// TestPropertyLineFeederMatchesPartitionRaw: for random slice
// geometries and adversarial chunkings — including chunks of 1 byte,
// chunks splitting every TSV record mid-line, and chunks larger than
// the input — the streamed partitions must be byte-identical to
// partitionRaw over the same buffered range.
func TestPropertyLineFeederMatchesPartitionRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(1721))
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 77, Sorted: false})
	object := bed.Marshal(recs)
	bounds := benchBounds(recs, 5)
	const workers = 5
	total := int64(len(object))

	for trial := 0; trial < 60; trial++ {
		// A random slice of the object, like one mapper's range.
		offset := rng.Int63n(total)
		length := 1 + rng.Int63n(total-offset)
		readOff := offset
		prefix := false
		if readOff > 0 {
			readOff--
			prefix = true
		}
		readLen := offset + length + overscan - readOff
		if readOff+readLen > total {
			readLen = total - readOff
		}
		raw := object[readOff : readOff+readLen]

		want, err := partitionRaw(raw, prefix, offset, length, workers, bounds)
		if err != nil {
			t.Fatalf("trial %d: partitionRaw: %v", trial, err)
		}
		var chunks []int
		switch trial % 4 {
		case 0:
			chunks = []int{1} // every record split at every byte
		case 1:
			chunks = []int{7, 13, 48, 3} // odd sizes straddling lines
		case 2:
			chunks = []int{1 << 20} // one chunk (degenerate to buffered)
		default:
			for i := 0; i < 8; i++ {
				chunks = append(chunks, 1+rng.Intn(200))
			}
		}
		got := feedChunks(t, raw, readOff, prefix, offset, length, workers, bounds, chunks)
		if len(got) != len(want) {
			t.Fatalf("trial %d: partition count %d vs %d", trial, len(got), len(want))
		}
		for r := range want {
			if !bytes.Equal(got[r], want[r]) {
				t.Fatalf("trial %d (chunks %v): partition %d differs (%d vs %d bytes)",
					trial, chunks, r, len(got[r]), len(want[r]))
			}
		}
	}
}

// TestGoldenStreamingMatchesBuffered: all three operators, streamed
// with a chunk size guaranteed to split records mid-line, must produce
// output byte-identical to the buffered read path (and to the seed
// oracle).
func TestGoldenStreamingMatchesBuffered(t *testing.T) {
	const chunk = 1009 // prime, ~21 bedMethyl lines: every chunk ends mid-line
	recs := bed.Generate(bed.GenConfig{Records: 5000, Seed: 84, Sorted: false})
	want := seedSortedBytes(recs)

	runOnce := func(buffered bool) (oneLevel, hier, cache []byte) {
		rig := newHierRig(t)
		var got, gotHier []byte
		rig.sim.Spawn("driver", func(p *des.Proc) {
			rig.loadInput(t, p, recs)
			spec := sortSpec(6)
			spec.StreamChunkBytes = chunk
			spec.BufferedRead = buffered
			res, err := rig.op.Sort(p, spec)
			if err != nil {
				t.Errorf("Sort(buffered=%v): %v", buffered, err)
				return
			}
			got = fetchRawParts(t, rig, p, res.OutputKeys)
			hs := hierSpec(8, 4)
			hs.StreamChunkBytes = chunk
			hs.BufferedRead = buffered
			hs.OutputPrefix = "sorted/h/"
			hres, err := rig.op.SortHierarchical(p, hs)
			if err != nil {
				t.Errorf("SortHierarchical(buffered=%v): %v", buffered, err)
				return
			}
			gotHier = fetchRawParts(t, rig, p, hres.OutputKeys)
		})
		if err := rig.sim.Run(); err != nil {
			t.Fatalf("sim: %v", err)
		}

		crig, _, cop := newCacheRig(t)
		var gotCache []byte
		crig.sim.Spawn("driver", func(p *des.Proc) {
			crig.loadInput(t, p, recs)
			cs := cacheSpec(5)
			cs.StreamChunkBytes = chunk
			cs.BufferedRead = buffered
			res, err := cop.Sort(p, cs)
			if err != nil {
				t.Errorf("cache Sort(buffered=%v): %v", buffered, err)
				return
			}
			gotCache = fetchRawParts(t, crig, p, res.OutputKeys)
		})
		if err := crig.sim.Run(); err != nil {
			t.Fatalf("cache sim: %v", err)
		}
		return got, gotHier, gotCache
	}

	s1, sh, sc := runOnce(false)
	b1, bh, bc := runOnce(true)
	for _, c := range []struct {
		name           string
		stream, buffer []byte
	}{
		{"one-level", s1, b1},
		{"hierarchical", sh, bh},
		{"cache", sc, bc},
	} {
		if !bytes.Equal(c.stream, c.buffer) {
			t.Errorf("%s: streamed output differs from buffered (%d vs %d bytes)",
				c.name, len(c.stream), len(c.buffer))
		}
		if !bytes.Equal(c.stream, want) {
			t.Errorf("%s: streamed output differs from seed oracle", c.name)
		}
	}
}

// TestStreamingMapUnderStoreFailures: injected object-store failures
// hit both the streams' open admissions and their chunk continuations;
// the client's chunk-level resume (bounded by MaxRetries) must keep
// the output byte-identical, with retries actually exercised.
func TestStreamingMapUnderStoreFailures(t *testing.T) {
	sim := des.New(17)
	store, err := objectstore.New(sim, objectstore.Config{
		RequestLatency:   time.Millisecond,
		PerConnBandwidth: 1e9,
		ReadOpsPerSec:    1e6,
		WriteOpsPerSec:   1e6,
		OpsBurst:         1e6,
		FailureRate:      0.1,
	})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	pf, err := faas.New(sim, store, faas.Config{
		ColdStart:          50 * time.Millisecond,
		WarmStart:          5 * time.Millisecond,
		KeepAlive:          10 * time.Minute,
		MemoryMB:           2048,
		BaselineMemoryMB:   2048,
		ConcurrencyLimit:   500,
		BillingGranularity: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	op, err := NewOperator(pf, store)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	rig := &testRig{sim: sim, store: store, pf: pf, op: op}
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 85, Sorted: false})
	want := seedSortedBytes(recs)
	spec := sortSpec(4)
	spec.StreamChunkBytes = 4096 // many continuations per stream: plenty of failure draws
	spec.MaxRetries = 4          // platform-level re-invocations on top of client retries
	var got []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := rig.op.Sort(p, spec)
		if err != nil {
			t.Errorf("Sort under failures: %v", err)
			return
		}
		got = fetchRawParts(t, rig, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output corrupt under injected failures: %d bytes, want %d", len(got), len(want))
	}
	if store.Metrics().Throttled == 0 {
		t.Fatal("no throttles metered at 10% failure rate; test exercised nothing")
	}
}

// TestStreamingMapOverlapsTransfer is the acceptance criterion: on the
// 256k-record workload the streamed map stage's wall time must beat
// the buffered transfer + partition sum, because partition CPU now
// hides inside the remaining transfer.
func TestStreamingMapOverlapsTransfer(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 1 << 18, Seed: 19, Sorted: false})

	run := func(buffered bool) (Result, int64) {
		sim := des.New(5)
		store, err := objectstore.New(sim, objectstore.Config{
			RequestLatency:   time.Millisecond,
			PerConnBandwidth: 4e6, // slow enough that transfer rivals CPU
			ReadOpsPerSec:    1e6,
			WriteOpsPerSec:   1e6,
			OpsBurst:         1e6,
		})
		if err != nil {
			t.Fatalf("store: %v", err)
		}
		pf, err := faas.New(sim, store, faas.Config{
			ColdStart:          50 * time.Millisecond,
			WarmStart:          5 * time.Millisecond,
			KeepAlive:          10 * time.Minute,
			MemoryMB:           2048,
			BaselineMemoryMB:   2048,
			ConcurrencyLimit:   500,
			BillingGranularity: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("platform: %v", err)
		}
		op, err := NewOperator(pf, store)
		if err != nil {
			t.Fatalf("operator: %v", err)
		}
		rig := &testRig{sim: sim, store: store, pf: pf, op: op}
		spec := sortSpec(4)
		spec.PartitionBps = 4e6 // transfer-bound ≈ CPU-bound: maximal overlap win
		spec.MergeBps = 50e6
		spec.StreamChunkBytes = 256 << 10
		spec.BufferedRead = buffered
		res, sorted := runSort(t, rig, recs, spec)
		if len(sorted) != len(recs) || !bed.IsSorted(sorted) {
			t.Fatal("overlap rig sorted incorrectly")
		}
		return res, res.TotalBytes
	}

	streamRes, size := run(false)
	bufRes, _ := run(true)

	// The buffered map pays read transfer + partition CPU serially;
	// streaming should hide the smaller of the two inside the other.
	// Both variants share the partition-write leg and startup, so the
	// win must be ~min(readTransfer, streamCPU) of wall time.
	perWorker := float64(size) / 4
	readLeg := time.Duration(perWorker / 4e6 * float64(time.Second))
	streamBps, _ := MapStreamRates(4e6)
	streamCPU := time.Duration(perWorker / streamBps * float64(time.Second))
	hidden := readLeg
	if streamCPU < hidden {
		hidden = streamCPU
	}
	if streamRes.Phase1 >= bufRes.Phase1 {
		t.Fatalf("streamed Phase1 %v not faster than buffered %v", streamRes.Phase1, bufRes.Phase1)
	}
	if bound := bufRes.Phase1 - hidden*7/10; streamRes.Phase1 > bound {
		t.Fatalf("streamed Phase1 %v hides too little of the %v overlappable leg (buffered %v, want <= %v)",
			streamRes.Phase1, hidden, bufRes.Phase1, bound)
	}
	t.Logf("map phase1: streamed %v vs buffered %v (saved %v of %v overlappable)",
		streamRes.Phase1, bufRes.Phase1, bufRes.Phase1-streamRes.Phase1, hidden)
}
