package shuffle

import (
	"fmt"
	"sort"
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
)

// The partition and merge benchmarks mirror internal/bed's
// new/legacy pairs: identical workloads (20k records, seed 11, 8
// reducers) through the binary-key data plane and through the string-
// keyed, materialize-and-resort path it replaced, kept inline here as
// the measured baseline.

func benchRecords() []bed.Record {
	return bed.Generate(bed.GenConfig{Records: 20000, Seed: 11, Sorted: false})
}

func benchBounds(recs []bed.Record, workers int) []Boundary {
	keys := make([]Boundary, len(recs))
	for i, r := range recs {
		keys[i] = Boundary{Key: bed.KeyOf(r), Name: r.Chrom}
	}
	sort.Slice(keys, func(i, j int) bool {
		return bed.CompareKeyName(keys[i].Key, keys[i].Name, keys[j].Key, keys[j].Name) < 0
	})
	bounds := make([]Boundary, workers-1)
	for i := 1; i < workers; i++ {
		bounds[i-1] = keys[i*len(keys)/workers]
	}
	return bounds
}

func BenchmarkPartition(b *testing.B) {
	recs := benchRecords()
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 8)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partitionRaw(raw, false, 0, int64(len(raw)), 8, bounds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapStream is the streaming map body on the identical
// workload as BenchmarkPartition: the same slice fed through the
// chunk-boundary line feeder in 64 KiB chunks (partial trailing lines
// carried across chunks) instead of one buffered partitionRaw pass.
// The delta between the two is the Go-side cost of the streaming
// machinery — it buys the DES-side transfer/CPU overlap, so it must
// stay noise.
func BenchmarkMapStream(b *testing.B) {
	recs := benchRecords()
	raw := bed.Marshal(recs)
	bounds := benchBounds(recs, 8)
	const chunk = 64 << 10
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := newRunBuilder(8, bounds)
		builder.sizeHint(len(raw))
		f := &lineFeeder{fn: builder.Add, limit: int64(len(raw))}
		for pos := 0; pos < len(raw) && !f.done; pos += chunk {
			end := pos + chunk
			if end > len(raw) {
				end = len(raw)
			}
			if err := f.feed(raw[pos:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := f.finish(); err != nil {
			b.Fatal(err)
		}
		builder.Finish()
	}
}

// legacyPartitionRaw is the pre-data-plane mapper body: parse each
// line to a Record, format its SortKey string, binary-search the
// string boundaries, and re-serialize — no sorted-run invariant.
func legacyPartitionRaw(raw []byte, workers int, boundaries []string, lines [][]byte) ([][]byte, error) {
	parts := make([][]byte, workers)
	for _, line := range lines {
		rec, err := bed.ParseLine(line)
		if err != nil {
			return nil, err
		}
		r := sort.SearchStrings(boundaries, bed.SortKey(rec)+"\x00")
		parts[r] = bed.AppendTSV(parts[r], rec)
	}
	return parts, nil
}

func BenchmarkPartitionLegacy(b *testing.B) {
	recs := benchRecords()
	raw := bed.Marshal(recs)
	var lines [][]byte
	if err := forEachLine(raw, func(line []byte) error {
		lines = append(lines, line)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = bed.SortKey(r)
	}
	sort.Strings(keys)
	bounds := make([]string, 7)
	for i := 1; i < 8; i++ {
		bounds[i-1] = keys[i*len(keys)/8]
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyPartitionRaw(raw, 8, bounds, lines); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRuns builds 8 sorted runs covering the benchmark records.
func benchRuns(b *testing.B) ([][]byte, int64) {
	b.Helper()
	recs := benchRecords()
	bed.Sort(recs)
	const w = 8
	lists := make([][]bed.Record, w)
	for i, r := range recs {
		lists[i%w] = append(lists[i%w], r)
	}
	runs := make([][]byte, w)
	var total int64
	for i, rl := range lists {
		runs[i] = bed.Marshal(rl)
		total += int64(len(runs[i]))
	}
	return runs, total
}

func BenchmarkReduceMerge(b *testing.B) {
	runs, total := benchRuns(b)
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mergeRuns(runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionSort is the ISSUE 4 headline: the mapper's
// per-partition sort alone — runPart.finish on one unsorted partition
// — at sizes where the partition has outgrown cache. The Legacy
// variant is the PR 3 body (stable comparison sort over the ref index,
// kept in-tree as legacySortRun) on the identical input. Both pay the
// same buffer-ownership copy-in, so the delta is the sort itself.
func BenchmarkPartitionSort(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recs := bed.Generate(bed.GenConfig{Records: n, Seed: 19, Sorted: false})
			pristine := buildRunPart(recs)
			b.SetBytes(int64(len(pristine.buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bufBox := partBufPool.get(len(pristine.buf))
				refsBox := lineRefPool.get(len(pristine.refs))
				p := runPart{
					buf:     append(*bufBox, pristine.buf...),
					refs:    append(*refsBox, pristine.refs...),
					bufBox:  bufBox,
					refsBox: refsBox,
				}
				if out := p.finish(); len(out) != len(pristine.buf) {
					b.Fatal("short run")
				}
			}
		})
	}
}

func BenchmarkPartitionSortLegacy(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recs := bed.Generate(bed.GenConfig{Records: n, Seed: 19, Sorted: false})
			pristine := buildRunPart(recs)
			b.SetBytes(int64(len(pristine.buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := runPart{
					buf:  append(make([]byte, 0, len(pristine.buf)), pristine.buf...),
					refs: append(make([]lineRef, 0, len(pristine.refs)), pristine.refs...),
				}
				if out := legacySortRun(&p); len(out) != len(pristine.buf) {
					b.Fatal("short run")
				}
			}
		})
	}
}

// benchRepartitionInput builds what one hierarchical round-2
// repartitioner gathers: g sorted runs (round-1 outputs) plus the fine
// boundaries for its k reducers.
func benchRepartitionInput() ([][]byte, []Boundary, int64) {
	recs := bed.Generate(bed.GenConfig{Records: 40000, Seed: 23, Sorted: false})
	const g, k = 4, 8
	lists := make([][]bed.Record, g)
	for i, r := range recs {
		lists[i%g] = append(lists[i%g], r)
	}
	runs := make([][]byte, g)
	var total int64
	for i, rl := range lists {
		bed.Sort(rl)
		runs[i] = bed.Marshal(rl)
		total += int64(len(runs[i]))
	}
	return runs, benchBounds(recs, k), total
}

func BenchmarkRepartition(b *testing.B) {
	runs, bounds, total := benchRepartitionInput()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mergeSplit(runs, 8, bounds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionLegacy is the PR 3 round-2 repartition body:
// binary-search routing of every line, then each output partition
// rebuilt as a run by the per-partition sort — discarding the
// sortedness round 1 already paid for.
func BenchmarkRepartitionLegacy(b *testing.B) {
	runs, bounds, total := benchRepartitionInput()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([]runPart, 8)
		for _, run := range runs {
			if err := forEachLine(run, func(line []byte) error {
				key, err := bed.KeyOfLine(line)
				if err != nil {
					return err
				}
				p := &parts[partitionIndex(key, chromOf(line), bounds)]
				off := len(p.buf)
				p.buf = append(p.buf, line...)
				p.buf = append(p.buf, '\n')
				p.refs = append(p.refs, lineRef{key: key, off: int32(off), len: int32(len(p.buf) - off)})
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		for r := range parts {
			_ = legacySortRun(&parts[r])
		}
	}
}

func BenchmarkReduceMergeLegacy(b *testing.B) {
	runs, total := benchRuns(b)
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-data-plane reducer body: parse every partition,
		// concatenate, full-sort, re-serialize.
		var all []bed.Record
		for _, raw := range runs {
			part, err := bed.Unmarshal(raw)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, part...)
		}
		bed.Sort(all)
		_ = bed.Marshal(all)
	}
}

// BenchmarkReduceStream is the streamed reducer body on the identical
// workload as BenchmarkReduceMerge: the same 8 sorted runs fed through
// chunk-fed cursors in 64 KiB chunks — partial trailing lines carried
// across chunk boundaries in the alternating carry buffers — instead
// of resident whole-run cursors. The delta between the two is the
// Go-side cost of the streaming merge machinery; it buys the DES-side
// transfer/merge/upload overlap, so it must stay small.
func BenchmarkReduceStream(b *testing.B) {
	runs, total := benchRuns(b)
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs := make([]runSource, len(runs))
		for j, run := range runs {
			// payloadSource never parks, so no des process is needed.
			srcs[j] = &payloadSource{pl: payload.RealNoCopy(run), chunk: 64 << 10}
		}
		var out int64
		sized, _, err := mergeStreamedRuns(nil, srcs, nil, func(key bed.Key, line []byte) error {
			out += int64(len(line)) + 1
			return nil
		})
		if err != nil || sized || out != total {
			b.Fatalf("merge: err=%v sized=%v out=%d want %d", err, sized, out, total)
		}
	}
}
