package shuffle

import (
	"bytes"
	"sort"
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// The golden tests pin the data plane's end product: the concatenated
// output parts of every operator must be byte-identical to what the
// seed implementation produced — which, for the seed's
// parse-concatenate-sort-serialize reducer, is exactly the TSV
// serialization of the input records in genome order (computed here
// with the seed's own sort.Slice-over-Less as the oracle).

// seedSortedBytes reproduces the seed pipeline's output bytes.
func seedSortedBytes(recs []bed.Record) []byte {
	s := make([]bed.Record, len(recs))
	copy(s, recs)
	sort.Slice(s, func(i, j int) bool { return bed.Less(s[i], s[j]) })
	return bed.Marshal(s)
}

// fetchRawParts concatenates the raw output part bytes in key order.
func fetchRawParts(t *testing.T, rig *testRig, p *des.Proc, keys []string) []byte {
	t.Helper()
	c := objectstore.NewClient(rig.store)
	var out []byte
	for _, k := range keys {
		pl, err := c.Get(p, "out", k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		raw, ok := pl.Bytes()
		if !ok {
			t.Fatalf("output %s is not real", k)
		}
		out = append(out, raw...)
	}
	return out
}

func TestGoldenSortOutputByteIdentical(t *testing.T) {
	rig := newRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 5000, Seed: 81, Sorted: false})
	want := seedSortedBytes(recs)
	var got []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := rig.op.Sort(p, sortSpec(6))
		if err != nil {
			t.Errorf("Sort: %v", err)
			return
		}
		got = fetchRawParts(t, rig, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sorted output differs from seed bytes: got %d bytes, want %d", len(got), len(want))
	}
}

func TestGoldenHierarchicalOutputByteIdentical(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 4800, Seed: 82, Sorted: false})
	want := seedSortedBytes(recs)
	var got []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := rig.op.SortHierarchical(p, hierSpec(8, 4))
		if err != nil {
			t.Errorf("SortHierarchical: %v", err)
			return
		}
		got = fetchRawParts(t, rig, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("hierarchical output differs from seed bytes: got %d bytes, want %d", len(got), len(want))
	}
}

// TestGoldenScaffoldChromsByteIdentical: beyond-table scaffold names
// that collide in the binary key's 8-byte prefix (all hg38 chrUn_*
// contigs share "chrUn_K") must still come out in exact genome order —
// full names decide before start everywhere keys are compared:
// boundary routing, run sorting, and the merge.
func TestGoldenScaffoldChromsByteIdentical(t *testing.T) {
	var recs []bed.Record
	for i := 0; i < 120; i++ {
		// Interleave starts so name order and start order disagree.
		recs = append(recs,
			bed.Record{Chrom: "chrUn_KI270302v1", Start: int64(9000 + i*7), End: int64(9001 + i*7),
				Name: ".", Score: 1, Strand: '+', Coverage: 1, MethPct: 50},
			bed.Record{Chrom: "chrUn_KI270303v1", Start: int64(10 + i*3), End: int64(11 + i*3),
				Name: ".", Score: 1, Strand: '-', Coverage: 1, MethPct: 50},
			bed.Record{Chrom: "chr1", Start: int64(100 + i*11), End: int64(101 + i*11),
				Name: ".", Score: 1, Strand: '+', Coverage: 1, MethPct: 50},
		)
	}
	// Shuffle deterministically so the input is unsorted.
	for i := len(recs) - 1; i > 0; i-- {
		j := (i * 7919) % (i + 1)
		recs[i], recs[j] = recs[j], recs[i]
	}
	want := seedSortedBytes(recs)
	rig := newHierRig(t)
	var got, gotHier []bed.Record
	var raw, rawHier []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := rig.op.Sort(p, sortSpec(4))
		if err != nil {
			t.Errorf("Sort: %v", err)
			return
		}
		raw = fetchRawParts(t, rig, p, res.OutputKeys)
		got = rig.fetchSorted(t, p, res.OutputKeys)
		spec := hierSpec(4, 2)
		spec.OutputPrefix = "sorted/h/"
		hres, err := rig.op.SortHierarchical(p, spec)
		if err != nil {
			t.Errorf("SortHierarchical: %v", err)
			return
		}
		rawHier = fetchRawParts(t, rig, p, hres.OutputKeys)
		gotHier = rig.fetchSorted(t, p, hres.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bed.IsSorted(got) || !bytes.Equal(raw, want) {
		t.Fatal("one-level output misorders prefix-colliding scaffolds")
	}
	if !bed.IsSorted(gotHier) || !bytes.Equal(rawHier, want) {
		t.Fatal("hierarchical output misorders prefix-colliding scaffolds")
	}
}

func TestGoldenCacheOutputByteIdentical(t *testing.T) {
	rig, _, op := newCacheRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 83, Sorted: false})
	want := seedSortedBytes(recs)
	var got []byte
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, err := op.Sort(p, cacheSpec(5))
		if err != nil {
			t.Errorf("cache Sort: %v", err)
			return
		}
		got = fetchRawParts(t, rig, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cache output differs from seed bytes: got %d bytes, want %d", len(got), len(want))
	}
}
