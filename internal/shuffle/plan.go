// Package shuffle implements a Primula-style shuffle/sort operator for
// serverless workflows: an all-to-all sort through object storage with
// an on-the-fly planner that picks the number of functions to match
// the storage service's throughput profile — the paper's key mechanism
// ("using the optimal number of functions in terms of remote storage
// resource utilization is crucial for good performance", §2.2).
package shuffle

import (
	"fmt"
	"math"
	"time"

	"github.com/faaspipe/faaspipe/internal/objectstore"
)

// StoreProfile summarizes the object storage performance model the
// planner optimizes against. It mirrors objectstore.Config.
type StoreProfile struct {
	RequestLatency     time.Duration
	PerConnBandwidth   float64
	AggregateBandwidth float64
	ReadOpsPerSec      float64
	WriteOpsPerSec     float64
}

// PlanInput describes one shuffle job for the planner.
type PlanInput struct {
	// DataBytes is the shuffle volume.
	DataBytes int64
	// MaxWorkers bounds the search (platform or user limit).
	MaxWorkers int
	// WorkerMemBytes is the per-function memory usable for data; a
	// worker's input partition must fit within MemFillFactor of it.
	WorkerMemBytes int64
	// MemFillFactor is the usable fraction of worker memory
	// (default 0.6: parse overhead, runtime, double buffering).
	MemFillFactor float64
	// PartitionBps is a worker's partitioning throughput
	// (parse + route + serialize), bytes/second.
	PartitionBps float64
	// MergeBps is a worker's merge/sort throughput, bytes/second.
	MergeBps float64
	// Startup is the per-wave function startup estimate.
	Startup time.Duration
}

func (in PlanInput) withDefaults() PlanInput {
	if in.MaxWorkers <= 0 {
		in.MaxWorkers = 256
	}
	if in.MemFillFactor <= 0 || in.MemFillFactor > 1 {
		in.MemFillFactor = 0.6
	}
	if in.PartitionBps <= 0 {
		in.PartitionBps = 150e6
	}
	if in.MergeBps <= 0 {
		in.MergeBps = 200e6
	}
	return in
}

// Plan is the planner's decision with its predicted breakdown.
type Plan struct {
	// Workers is the chosen parallelism for both phases.
	Workers int
	// Predicted is the modeled end-to-end shuffle latency.
	Predicted time.Duration
	// Breakdown components of Predicted.
	Startup   time.Duration
	Phase1IO  time.Duration
	Phase1CPU time.Duration
	Phase2IO  time.Duration
	Phase2CPU time.Duration
	// MinWorkers is the memory-imposed lower bound the plan respected.
	MinWorkers int
}

// Predict models the shuffle latency with w workers per phase.
//
// Phase 1 (map): each worker streams its data/w slice, partitioning
// chunks as they arrive — the ranged GET's transfer overlaps the
// parse/route CPU, so the streaming leg costs max(transfer,
// partitionCPU), and only the per-partition radix sort
// (mapSortShare of the partition budget) runs after the transfer —
// then writes w intermediate objects. Phase 2 (reduce): each worker
// streams its w intermediates (data/w total) into the k-way merge over
// w concurrent connections while the merged output leaves through the
// multipart PutStream writer, so the whole leg costs
// max(transfer-in, mergeCPU, transfer-out) plus the request terms.
// Transfers run at min(per-connection ceiling, aggregate/w); the w^2
// requests of each phase pay per-request latency serially per worker
// and are jointly subject to the service's ops throttle — the term
// that makes over-parallelizing lose.
//
// In the returned Plan, Phase1IO carries the whole streaming leg
// (transfer and partition CPU overlapped) plus the request terms and
// the partition-write leg; Phase1CPU is only the post-stream sort, so
// the component sum still equals the worker's wall time. Phase2IO
// carries the fully-overlapped reduce leg and Phase2CPU is zero: the
// merge has no post-stream work.
func Predict(w int, in PlanInput, sp StoreProfile) Plan {
	in = in.withDefaults()
	d := float64(in.DataBytes)
	fw := float64(w)
	perWorker := d / fw

	rate := sp.PerConnBandwidth
	if sp.AggregateBandwidth > 0 {
		if agg := sp.AggregateBandwidth / fw; agg < rate {
			rate = agg
		}
	}

	lat := sp.RequestLatency.Seconds()
	streamBps, sortBps := MapStreamRates(in.PartitionBps)
	reqP1 := math.Max(fw*lat, fw*fw/sp.WriteOpsPerSec) // w writes/worker; w^2 throttled
	streamLeg := math.Max(perWorker/rate, perWorker/streamBps)
	ioP1 := streamLeg + perWorker/rate /* write partitions */ + reqP1 + lat
	cpuP1 := perWorker / sortBps // post-stream per-partition sort

	// Reduce-in runs w streams concurrently and reduce-out uploads
	// completed parts on DefaultPutConns connections, so each direction
	// is capped by its connection fan-out or the worker's aggregate
	// share, whichever binds first.
	aggShare := math.Inf(1)
	if sp.AggregateBandwidth > 0 {
		aggShare = sp.AggregateBandwidth / fw
	}
	inRate := math.Min(fw*sp.PerConnBandwidth, aggShare)
	outRate := math.Min(float64(objectstore.DefaultPutConns)*sp.PerConnBandwidth, aggShare)
	parts := float64(objectstore.PutStreamRequests(int64(perWorker), AdaptiveChunkBytes(0, int64(perWorker))))
	reqP2 := math.Max(fw*lat, math.Max(fw*fw/sp.ReadOpsPerSec, fw*parts/sp.WriteOpsPerSec))
	ioP2 := math.Max(perWorker/inRate, math.Max(perWorker/in.MergeBps, perWorker/outRate)) +
		reqP2 + lat
	cpuP2 := 0.0

	toDur := func(s float64) time.Duration {
		return time.Duration(s * float64(time.Second))
	}
	p := Plan{
		Workers:   w,
		Startup:   in.Startup,
		Phase1IO:  toDur(ioP1),
		Phase1CPU: toDur(cpuP1),
		Phase2IO:  toDur(ioP2),
		Phase2CPU: toDur(cpuP2),
	}
	p.Predicted = p.Startup + p.Phase1IO + p.Phase1CPU + p.Phase2IO + p.Phase2CPU
	return p
}

// MinWorkersForMemory returns the smallest worker count whose input
// partition fits in worker memory.
func MinWorkersForMemory(in PlanInput) int {
	in = in.withDefaults()
	if in.WorkerMemBytes <= 0 {
		return 1
	}
	usable := float64(in.WorkerMemBytes) * in.MemFillFactor
	minW := int(math.Ceil(float64(in.DataBytes) / usable))
	if minW < 1 {
		minW = 1
	}
	return minW
}

// Optimize picks the worker count minimizing predicted latency,
// subject to the memory lower bound — Primula's "find the optimal
// number of functions for a given shuffle data size on the fly".
func Optimize(in PlanInput, sp StoreProfile) (Plan, error) {
	in = in.withDefaults()
	if in.DataBytes <= 0 {
		return Plan{}, fmt.Errorf("shuffle: non-positive data size %d", in.DataBytes)
	}
	if sp.PerConnBandwidth <= 0 || sp.ReadOpsPerSec <= 0 || sp.WriteOpsPerSec <= 0 {
		return Plan{}, fmt.Errorf("shuffle: invalid store profile %+v", sp)
	}
	minW := MinWorkersForMemory(in)
	if minW > in.MaxWorkers {
		return Plan{}, fmt.Errorf(
			"shuffle: %d bytes need >= %d workers but MaxWorkers is %d",
			in.DataBytes, minW, in.MaxWorkers)
	}
	best := Plan{}
	for w := minW; w <= in.MaxWorkers; w++ {
		p := Predict(w, in, sp)
		if best.Workers == 0 || p.Predicted < best.Predicted {
			best = p
		}
	}
	best.MinWorkers = minW
	return best, nil
}

// SweepPoint is one (workers, predicted latency) sample; the worker
// sweep experiment plots these against measured latencies.
type SweepPoint struct {
	Workers   int
	Predicted time.Duration
}

// Sweep predicts latency for every worker count in [from, to].
func Sweep(from, to int, in PlanInput, sp StoreProfile) []SweepPoint {
	if from < 1 {
		from = 1
	}
	pts := make([]SweepPoint, 0, to-from+1)
	for w := from; w <= to; w++ {
		pts = append(pts, SweepPoint{Workers: w, Predicted: Predict(w, in, sp).Predicted})
	}
	return pts
}
