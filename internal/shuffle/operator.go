package shuffle

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

const (
	// mapFn and reduceFn are the operator's function names on the
	// platform.
	mapFn    = "shuffle/map"
	reduceFn = "shuffle/reduce"
	// overscan is how far past its range a map worker reads to finish
	// its last line; bedMethyl lines are ~48 bytes, 4 KiB is generous.
	overscan = 4096
	// defaultSampleBytes is the sample size for boundary estimation.
	defaultSampleBytes = 256 * 1024
)

// Operator is a serverless shuffle/sort over an object store. One
// operator registers its map/reduce functions on a platform once and
// can then run any number of jobs.
type Operator struct {
	platform *faas.Platform
	store    *objectstore.Service
	// seq allocates job IDs atomically: a session rig shares one
	// operator across concurrently Submitted jobs.
	seq          atomic.Int64
	hierarchical bool
}

// HierarchicalEnabled reports whether EnableHierarchical registered
// the two-level shuffle's functions — the auto-planner only enumerates
// hierarchical candidates when it did.
func (op *Operator) HierarchicalEnabled() bool { return op.hierarchical }

// NewOperator registers the shuffle functions on the platform.
func NewOperator(platform *faas.Platform, store *objectstore.Service) (*Operator, error) {
	op := &Operator{platform: platform, store: store}
	if err := platform.Register(mapFn, mapHandler); err != nil {
		return nil, err
	}
	if err := platform.Register(reduceFn, reduceHandler); err != nil {
		return nil, err
	}
	return op, nil
}

// Spec describes one sort job.
type Spec struct {
	// InputBucket/InputKey locate the unsorted bedMethyl object.
	InputBucket, InputKey string
	// OutputBucket/OutputPrefix receive the sorted parts
	// (<prefix>part-NNNN), globally ordered by part index.
	OutputBucket, OutputPrefix string
	// ScratchBucket holds intermediate partitions (default: output
	// bucket).
	ScratchBucket string
	// Workers fixes the parallelism; 0 lets the planner choose.
	Workers int
	// MaxWorkers bounds the planner (default 256).
	MaxWorkers int
	// WorkerMemBytes is each function's usable memory for planning.
	WorkerMemBytes int64
	// SampleBytes is read up front to estimate partition boundaries
	// (default 256 KiB).
	SampleBytes int64
	// PartitionBps / MergeBps are the modeled per-worker throughputs
	// used both by the planner and to charge virtual compute time.
	PartitionBps, MergeBps float64
	// Startup is the planner's per-wave startup estimate.
	Startup time.Duration
	// MemoryMB overrides the platform's function memory grant.
	MemoryMB int
	// MaxRetries re-attempts invocations lost to transient platform
	// failures (faas.ErrInvocationFailed) this many extra times.
	MaxRetries int
	// Speculate enables straggler mitigation: laggard workers get a
	// duplicate invocation and the first completion wins. The shuffle's
	// functions are idempotent (deterministic keys), so this is safe.
	Speculate bool
	// Speculation tunes the mitigation when Speculate is set
	// (zero value: faas defaults).
	Speculation faas.Speculation
	// CleanupScratch deletes intermediate partition objects once the
	// consumer's output part is durably written (deferred so that a
	// MaxRetries re-attempt can still re-fetch everything). Deletes are
	// free on real providers but pay request latency; the default
	// leaves scratch in place (lifecycle rules reap it), matching the
	// paper's setup.
	CleanupScratch bool
	// StreamChunkBytes is the streaming map read's transfer granularity
	// (default objectstore.DefaultStreamChunk). Smaller chunks overlap
	// transfer and partition CPU at finer grain.
	StreamChunkBytes int64
	// BufferedRead restores the pre-streaming map read: buffer the
	// whole ranged GET, then partition. Kept for A/B timing studies and
	// the byte-identity tests pinning the streaming path against it.
	BufferedRead bool
}

func (s Spec) validate() error {
	if s.InputBucket == "" || s.InputKey == "" {
		return errors.New("shuffle: input not specified")
	}
	if s.OutputBucket == "" {
		return errors.New("shuffle: output bucket not specified")
	}
	if s.Workers < 0 {
		return fmt.Errorf("shuffle: negative workers %d", s.Workers)
	}
	if s.CleanupScratch && s.Speculate {
		// A speculative duplicate re-reads partitions its twin may have
		// already deleted; even with deletes deferred past the output
		// write, a losing twin can outlive the winner's cleanup, so the
		// combination stays rejected. (CleanupScratch with MaxRetries is
		// fine: deletes only happen after an attempt's output is durable,
		// and failed attempts delete nothing.)
		return errors.New("shuffle: CleanupScratch and Speculate are mutually exclusive")
	}
	if s.Speculate {
		if err := s.Speculation.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result reports a completed sort.
type Result struct {
	// Workers is the parallelism actually used.
	Workers int
	// Planned is the planner's decision (zero-valued when Workers was
	// fixed by the caller).
	Planned Plan
	// AutoPlanned reports whether the planner chose the worker count.
	AutoPlanned bool
	// Sample, Phase1, Phase2 are the measured stage durations.
	Sample, Phase1, Phase2 time.Duration
	// TotalBytes is the input size.
	TotalBytes int64
	// OutputKeys are the sorted part keys in global order.
	OutputKeys []string
}

// Sort runs the shuffle, blocking p until the sorted output is in
// place.
func (op *Operator) Sort(p *des.Proc, spec Spec) (Result, error) {
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if spec.ScratchBucket == "" {
		spec.ScratchBucket = spec.OutputBucket
	}
	if spec.SampleBytes <= 0 {
		spec.SampleBytes = defaultSampleBytes
	}
	jobID := fmt.Sprintf("shuffle-%04d", op.seq.Add(1))
	client := objectstore.NewClient(op.store)

	head, err := client.Head(p, spec.InputBucket, spec.InputKey)
	if err != nil {
		return Result{}, fmt.Errorf("shuffle: stat input: %w", err)
	}
	size := head.Size
	if size == 0 {
		return Result{}, errors.New("shuffle: empty input")
	}

	res := Result{TotalBytes: size}

	// Decide parallelism.
	workers := spec.Workers
	if workers == 0 {
		plan, err := Optimize(PlanInput{
			DataBytes:      size,
			MaxWorkers:     spec.MaxWorkers,
			WorkerMemBytes: spec.WorkerMemBytes,
			PartitionBps:   spec.PartitionBps,
			MergeBps:       spec.MergeBps,
			Startup:        spec.Startup,
		}, ProfileOf(op.store.Config()))
		if err != nil {
			return Result{}, err
		}
		workers = plan.Workers
		res.Planned = plan
		res.AutoPlanned = true
	}
	res.Workers = workers

	// Sample for partition boundaries ("on the fly", real mode only).
	sampleStart := p.Now()
	boundaries, err := sampleBoundaries(p, client, spec, size, workers)
	if err != nil {
		return Result{}, err
	}
	res.Sample = p.Now() - sampleStart

	// Phase 1: map / partition.
	p1Start := p.Now()
	ranges := splitRanges(size, workers)
	mapInputs := make([]any, workers)
	for i := 0; i < workers; i++ {
		mapInputs[i] = &mapTask{
			JobID:         jobID,
			InputBucket:   spec.InputBucket,
			InputKey:      spec.InputKey,
			Offset:        ranges[i].off,
			Length:        ranges[i].n,
			TotalSize:     size,
			Workers:       workers,
			MapIndex:      i,
			Boundaries:    boundaries,
			ScratchBucket: spec.ScratchBucket,
			PartitionBps:  spec.PartitionBps,
			ChunkBytes:    spec.StreamChunkBytes,
			Buffered:      spec.BufferedRead,
		}
	}
	if _, err := op.mapPhase(p, mapFn, mapInputs, spec); err != nil {
		return Result{}, fmt.Errorf("shuffle: map phase: %w", err)
	}
	res.Phase1 = p.Now() - p1Start

	// Phase 2: reduce / merge.
	p2Start := p.Now()
	redInputs := make([]any, workers)
	for i := 0; i < workers; i++ {
		redInputs[i] = &reduceTask{
			JobID:         jobID,
			ScratchBucket: spec.ScratchBucket,
			Workers:       workers,
			ReduceIndex:   i,
			OutputIndex:   i,
			OutputBucket:  spec.OutputBucket,
			OutputPrefix:  spec.OutputPrefix,
			MergeBps:      spec.MergeBps,
			Cleanup:       spec.CleanupScratch,
			SliceBytes:    size / int64(workers),
			ChunkBytes:    spec.StreamChunkBytes,
			Buffered:      spec.BufferedRead,
		}
	}
	outs, err := op.mapPhase(p, reduceFn, redInputs, spec)
	if err != nil {
		return Result{}, fmt.Errorf("shuffle: reduce phase: %w", err)
	}
	res.Phase2 = p.Now() - p2Start
	for _, o := range outs {
		key, ok := o.(string)
		if !ok {
			return Result{}, fmt.Errorf("shuffle: reduce returned %T, want string key", o)
		}
		res.OutputKeys = append(res.OutputKeys, key)
	}
	return res, nil
}

// mapPhase runs one wave of fn over inputs with the spec's fault
// policy: per-invocation retries for transient platform failures and
// optional straggler speculation.
func (op *Operator) mapPhase(p *des.Proc, fn string, inputs []any, spec Spec) ([]any, error) {
	opts := faas.InvokeOptions{MemoryMB: spec.MemoryMB, MaxRetries: spec.MaxRetries}
	if spec.Speculate {
		outs, _, err := op.platform.MapSpeculative(p, fn, inputs, opts, spec.Speculation)
		return outs, err
	}
	return op.platform.MapSync(p, fn, inputs, opts)
}

// sampleBoundaries reads the head of the input and derives w-1 binary
// sort-key boundaries from sample quantiles. Sized inputs return nil
// boundaries (timing-only mode splits evenly). Shared by the
// object-storage and cache operators.
func sampleBoundaries(p *des.Proc, client *objectstore.Client, spec Spec, size int64, workers int) ([]Boundary, error) {
	if workers <= 1 {
		return nil, nil
	}
	n := spec.SampleBytes
	if n > size {
		n = size
	}
	pl, err := client.GetRange(p, spec.InputBucket, spec.InputKey, 0, n)
	if err != nil {
		return nil, fmt.Errorf("shuffle: sample: %w", err)
	}
	raw, ok := pl.Bytes()
	if !ok {
		return nil, nil // sized mode
	}
	if cut := bytes.LastIndexByte(raw, '\n'); cut >= 0 {
		raw = raw[:cut+1]
	} else if int64(len(raw)) < size {
		return nil, errors.New("shuffle: sample contains no complete line")
	}
	recs, err := bed.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("shuffle: sample parse: %w", err)
	}
	if len(recs) == 0 {
		return nil, errors.New("shuffle: empty sample")
	}
	// Radix sort the packed sample keys: the sample is read before
	// wave 1 can launch, so its sort sits on the job's critical path.
	// Idx carries the record index; ties fall back to full-name
	// comparison plus input order, exactly like runPart.finish.
	krs := make([]bed.KeyRef, len(recs))
	for i, r := range recs {
		krs[i] = bed.KeyRef{Key: bed.KeyOf(r), Idx: int32(i)}
	}
	bed.RadixSort(krs, func(a, b bed.KeyRef) int {
		if c := bed.CompareKeyName(a.Key, recs[a.Idx].Chrom, b.Key, recs[b.Idx].Chrom); c != 0 {
			return c
		}
		return int(a.Idx) - int(b.Idx)
	})
	bounds := make([]Boundary, workers-1)
	for i := 1; i < workers; i++ {
		kr := krs[i*len(krs)/workers]
		bounds[i-1] = Boundary{Key: kr.Key, Name: recs[kr.Idx].Chrom}
	}
	return bounds, nil
}

type byteRange struct {
	off, n int64
}

// splitRanges divides [0, size) into w contiguous ranges differing by
// at most one byte in length.
func splitRanges(size int64, w int) []byteRange {
	ranges := make([]byteRange, w)
	base := size / int64(w)
	rem := size % int64(w)
	off := int64(0)
	for i := 0; i < w; i++ {
		n := base
		if int64(i) < rem {
			n++
		}
		ranges[i] = byteRange{off: off, n: n}
		off += n
	}
	return ranges
}

// ProfileOf converts a store config into the planner's profile.
func ProfileOf(cfg objectstore.Config) StoreProfile {
	return StoreProfile{
		RequestLatency:     cfg.RequestLatency,
		PerConnBandwidth:   cfg.PerConnBandwidth,
		AggregateBandwidth: cfg.AggregateBandwidth,
		ReadOpsPerSec:      cfg.ReadOpsPerSec,
		WriteOpsPerSec:     cfg.WriteOpsPerSec,
	}
}

// mapTask is the input of one map-phase activation.
type mapTask struct {
	JobID         string
	InputBucket   string
	InputKey      string
	Offset        int64
	Length        int64
	TotalSize     int64
	Workers       int
	MapIndex      int
	Boundaries    []Boundary
	ScratchBucket string
	PartitionBps  float64
	ChunkBytes    int64
	Buffered      bool
}

// read returns the task's input-slice geometry for the streaming path.
func (t *mapTask) read() mapRead {
	return mapRead{
		Bucket: t.InputBucket, Key: t.InputKey,
		Offset: t.Offset, Length: t.Length, TotalSize: t.TotalSize,
		ChunkBytes: t.ChunkBytes, PartitionBps: t.PartitionBps,
	}
}

// reduceTask is the input of one reduce-phase activation. OutputIndex
// names the globally-ordered part this reducer emits; the one-level
// operator sets it to ReduceIndex, the hierarchical operator to the
// group-offset global index.
type reduceTask struct {
	JobID         string
	ScratchBucket string
	Workers       int
	ReduceIndex   int
	OutputIndex   int
	OutputBucket  string
	OutputPrefix  string
	MergeBps      float64
	Cleanup       bool
	// SliceBytes is the planned per-reducer input volume, sizing the
	// adaptive stream chunk; ChunkBytes overrides it when set.
	SliceBytes int64
	ChunkBytes int64
	// Buffered restores the pre-streaming reduce: buffer every run,
	// merge, one monolithic Put. The A/B baseline.
	Buffered bool
}

// mapHandler consumes its input slice as a stream of chunks,
// partitioning records by the binary sort-key boundaries as they
// arrive, and writes one sorted run per reducer. Buffered tasks keep
// the pre-streaming read-everything-first behavior.
func mapHandler(ctx *faas.Ctx, input any) (any, error) {
	task, ok := input.(*mapTask)
	if !ok {
		return nil, fmt.Errorf("shuffle: map input %T", input)
	}
	if task.Length == 0 {
		// Degenerate split (more workers than bytes): write empty
		// partitions to keep the key structure uniform.
		for r := 0; r < task.Workers; r++ {
			if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
				partKey(task.JobID, task.MapIndex, r), payload.Real(nil)); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if task.Buffered {
		return mapBuffered(ctx, task)
	}
	parts, sized, err := consumeMapStream(ctx, task.read(), task.Workers, task.Boundaries)
	if err != nil {
		return nil, fmt.Errorf("shuffle: map %d: %w", task.MapIndex, err)
	}
	if sized {
		return mapSized(ctx, task)
	}
	for r := 0; r < task.Workers; r++ {
		if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
			partKey(task.JobID, task.MapIndex, r), payload.RealNoCopy(parts[r])); err != nil {
			return nil, fmt.Errorf("shuffle: map %d write partition %d: %w", task.MapIndex, r, err)
		}
	}
	return nil, nil
}

// mapBuffered is the pre-streaming map body: one blocking ranged GET,
// then partitioning. The whole slice's transfer and CPU add up
// serially; kept behind Spec.BufferedRead as the A/B baseline.
func mapBuffered(ctx *faas.Ctx, task *mapTask) (any, error) {
	readOff, readLen, prefixByte := task.read().span()
	pl, err := ctx.Store.GetRange(ctx.Proc, task.InputBucket, task.InputKey, readOff, readLen)
	if err != nil {
		return nil, fmt.Errorf("shuffle: map %d read: %w", task.MapIndex, err)
	}
	ctx.ComputeBytes(task.Length, task.PartitionBps)

	raw, real := pl.Bytes()
	if !real {
		return mapSized(ctx, task)
	}
	return nil, mapReal(ctx, task, raw, prefixByte)
}

func mapReal(ctx *faas.Ctx, task *mapTask, raw []byte, prefixByte bool) error {
	parts, err := partitionRaw(raw, prefixByte, task.Offset, task.Length, task.Workers, task.Boundaries)
	if err != nil {
		return fmt.Errorf("shuffle: map %d: %w", task.MapIndex, err)
	}
	for r := 0; r < task.Workers; r++ {
		if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
			partKey(task.JobID, task.MapIndex, r), payload.RealNoCopy(parts[r])); err != nil {
			return fmt.Errorf("shuffle: map %d write partition %d: %w", task.MapIndex, r, err)
		}
	}
	return nil
}

// partitionRaw splits the lines of raw owned by the slice
// [offset, offset+length) into one sorted run per reducer, routing
// each record by its binary sort key against the boundaries.
// prefixByte reports that raw begins one byte before offset (to decide
// first-line ownership). Shared by the object-storage and cache
// operators.
func partitionRaw(raw []byte, prefixByte bool, offset, length int64, workers int, boundaries []Boundary) ([][]byte, error) {
	// Determine the first line that starts within [offset, offset+length).
	start := 0
	if prefixByte {
		if raw[0] == '\n' {
			start = 1 // a line starts exactly at offset: ours
		} else {
			nl := bytes.IndexByte(raw, '\n')
			if nl < 0 {
				return nil, errNoLineStart
			}
			start = nl + 1
		}
	}
	// Lines whose start position (global) is < offset+length are ours.
	globalStart := func(local int) int64 {
		off := offset
		if prefixByte {
			off--
		}
		return off + int64(local)
	}
	limit := offset + length

	builder := newRunBuilder(workers, boundaries)
	builder.sizeHint(len(raw))
	pos := start
	for pos < len(raw) && globalStart(pos) < limit {
		nl := bytes.IndexByte(raw[pos:], '\n')
		var line []byte
		if nl < 0 {
			line = raw[pos:]
			pos = len(raw)
		} else {
			line = raw[pos : pos+nl]
			pos += nl + 1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if err := builder.Add(line); err != nil {
			return nil, err
		}
	}
	return builder.Finish(), nil
}

// mapSized handles timing-only payloads: partition sizes are the even
// split of this worker's slice.
func mapSized(ctx *faas.Ctx, task *mapTask) (any, error) {
	base := task.Length / int64(task.Workers)
	rem := task.Length % int64(task.Workers)
	for r := 0; r < task.Workers; r++ {
		n := base
		if int64(r) < rem {
			n++
		}
		if err := ctx.Store.Put(ctx.Proc, task.ScratchBucket,
			partKey(task.JobID, task.MapIndex, r), payload.Sized(n)); err != nil {
			return nil, fmt.Errorf("shuffle: map %d write partition %d: %w", task.MapIndex, r, err)
		}
	}
	return nil, nil
}

// reduceHandler opens a chunked stream over every mapper's sorted run
// and k-way merges them as the chunks arrive, the merged lines flowing
// straight into a multipart streaming PUT — transfer-in, merge CPU, and
// transfer-out all overlap, so the reduce leg costs their max instead
// of their sum. No re-parse of full records, no re-sort, no
// re-serialization. It returns the output key. Buffered tasks keep the
// pre-streaming fetch-all-then-merge body.
func reduceHandler(ctx *faas.Ctx, input any) (any, error) {
	task, ok := input.(*reduceTask)
	if !ok {
		return nil, fmt.Errorf("shuffle: reduce input %T", input)
	}
	if task.Buffered {
		return reduceBuffered(ctx, task)
	}
	perRun := task.SliceBytes
	if task.Workers > 0 {
		perRun /= int64(task.Workers)
	}
	inChunk := AdaptiveChunkBytes(task.ChunkBytes, perRun)
	srcs := make([]runSource, 0, task.Workers)
	defer func() {
		for _, s := range srcs {
			s.close()
		}
	}()
	var consumed []string
	for m := 0; m < task.Workers; m++ {
		key := partKey(task.JobID, m, task.ReduceIndex)
		cs, err := ctx.Store.GetStream(ctx.Proc, task.ScratchBucket, key, 0, -1,
			objectstore.StreamOptions{ChunkBytes: inChunk})
		if err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d open m%d: %w", task.ReduceIndex, m, err)
		}
		srcs = append(srcs, clientStreamSource{cs})
		if task.Cleanup {
			consumed = append(consumed, key)
		}
	}

	outKey := outputKey(task.OutputPrefix, task.OutputIndex)
	outPart := AdaptiveChunkBytes(task.ChunkBytes, task.SliceBytes)
	w := ctx.Store.PutStream(ctx.Proc, task.OutputBucket, outKey,
		objectstore.PutStreamOptions{PartBytes: outPart})
	var buf []byte
	emit := func(_ bed.Key, line []byte) error {
		if buf == nil {
			buf = make([]byte, 0, outPart+int64(len(line))+1)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		if int64(len(buf)) >= outPart {
			err := w.Write(ctx.Proc, payload.RealNoCopy(buf))
			buf = nil // the payload retains the buffer; start a fresh one
			return err
		}
		return nil
	}
	charge := func(n int64) { ctx.ComputeBytes(n, task.MergeBps) }
	sized, total, err := mergeStreamedRuns(ctx.Proc, srcs, charge, emit)
	if err != nil {
		w.Abort(ctx.Proc)
		return nil, fmt.Errorf("shuffle: reduce %d merge: %w", task.ReduceIndex, err)
	}
	if sized {
		w.Abort(ctx.Proc)
		if err := ctx.Store.Put(ctx.Proc, task.OutputBucket, outKey, payload.Sized(total)); err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d write: %w", task.ReduceIndex, err)
		}
	} else {
		if len(buf) > 0 {
			if err := w.Write(ctx.Proc, payload.RealNoCopy(buf)); err != nil {
				w.Abort(ctx.Proc)
				return nil, fmt.Errorf("shuffle: reduce %d write: %w", task.ReduceIndex, err)
			}
		}
		if err := w.Close(ctx.Proc); err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d write: %w", task.ReduceIndex, err)
		}
	}
	// Scratch deletes are deferred until the output part is durable: a
	// reducer retried after a transient platform failure (MaxRetries)
	// must be able to re-fetch every partition, so nothing may be
	// deleted by an attempt that did not finish. Close returning nil is
	// the durability point — the multipart complete has been admitted.
	for m, key := range consumed {
		if err := ctx.Store.Delete(ctx.Proc, task.ScratchBucket, key); err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d free m%d: %w", task.ReduceIndex, m, err)
		}
	}
	return outKey, nil
}

// reduceBuffered is the pre-streaming reduce body: fetch every run
// whole, merge, one monolithic Put. Transfer-in, merge CPU, and
// transfer-out add up serially; kept behind Spec.BufferedRead as the
// A/B baseline the byte-identity tests pin the streamed path against.
func reduceBuffered(ctx *faas.Ctx, task *reduceTask) (any, error) {
	var (
		runs     [][]byte
		consumed []string
		anySized bool
		total    int64
	)
	for m := 0; m < task.Workers; m++ {
		key := partKey(task.JobID, m, task.ReduceIndex)
		pl, err := ctx.Store.Get(ctx.Proc, task.ScratchBucket, key)
		if err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d fetch m%d: %w", task.ReduceIndex, m, err)
		}
		if task.Cleanup {
			consumed = append(consumed, key)
		}
		total += pl.Size()
		if raw, real := pl.Bytes(); real {
			runs = append(runs, raw)
		} else {
			anySized = true
		}
	}
	ctx.ComputeBytes(total, task.MergeBps)

	outKey := outputKey(task.OutputPrefix, task.OutputIndex)
	var out payload.Payload
	if anySized {
		out = payload.Sized(total)
	} else {
		merged, err := mergeRuns(runs)
		if err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d merge: %w", task.ReduceIndex, err)
		}
		out = payload.RealNoCopy(merged)
	}
	if err := ctx.Store.Put(ctx.Proc, task.OutputBucket, outKey, out); err != nil {
		return nil, fmt.Errorf("shuffle: reduce %d write: %w", task.ReduceIndex, err)
	}
	// Scratch deletes are deferred until the output part is durable: a
	// reducer retried after a transient platform failure (MaxRetries)
	// must be able to re-fetch every partition, so nothing may be
	// deleted by an attempt that did not finish.
	for m, key := range consumed {
		if err := ctx.Store.Delete(ctx.Proc, task.ScratchBucket, key); err != nil {
			return nil, fmt.Errorf("shuffle: reduce %d free m%d: %w", task.ReduceIndex, m, err)
		}
	}
	return outKey, nil
}
