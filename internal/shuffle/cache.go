package shuffle

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/memcache"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

const (
	// cacheMapFn and cacheReduceFn are the cache operator's function
	// names on the platform.
	cacheMapFn    = "cacheshuffle/map"
	cacheReduceFn = "cacheshuffle/reduce"
	// defaultCacheHeadroom oversizes the cluster so the all-to-all's
	// transient double-buffering never hits the eviction path.
	defaultCacheHeadroom = 1.3
)

// CacheOperator is a shuffle/sort whose all-to-all intermediates flow
// through a provisioned in-memory cache instead of object storage —
// the ElastiCache-style alternative the paper names in §1. Input and
// output still live in the object store (the datasets' home); only the
// w x w partition exchange uses the cache.
type CacheOperator struct {
	platform *faas.Platform
	store    *objectstore.Service
	prov     *memcache.Provisioner
	// seq allocates job IDs atomically: a session rig shares one
	// operator across concurrently Submitted jobs.
	seq atomic.Int64
}

// NewCacheOperator registers the cache-shuffle functions on the
// platform. Clusters are provisioned per job from prov.
func NewCacheOperator(platform *faas.Platform, store *objectstore.Service, prov *memcache.Provisioner) (*CacheOperator, error) {
	if prov == nil {
		return nil, errors.New("shuffle: nil cache provisioner")
	}
	op := &CacheOperator{platform: platform, store: store, prov: prov}
	if err := platform.Register(cacheMapFn, cacheMapHandler); err != nil {
		return nil, err
	}
	if err := platform.Register(cacheReduceFn, cacheReduceHandler); err != nil {
		return nil, err
	}
	return op, nil
}

// CacheSpec describes one cache-exchanged sort job.
type CacheSpec struct {
	// Spec carries the common job parameters. ScratchBucket is ignored:
	// intermediates live in the cache.
	Spec
	// Nodes fixes the cluster size; 0 sizes it from the input volume
	// with Headroom.
	Nodes int
	// Headroom oversizes auto-sized clusters (default 1.3).
	Headroom float64
	// Warm treats the cluster as already provisioned: the spin-up
	// latency is skipped, modeling a long-lived shared cluster. Billing
	// still accrues for the job window only, which understates a real
	// always-on cluster's cost — the ablation's point is latency.
	Warm bool
	// BatchedGets fetches each reducer's w partitions with per-shard
	// MGet pipelining instead of w serial Gets — one request latency
	// per shard instead of per partition.
	BatchedGets bool
	// Cluster, when set, is an already-running cluster owned by the
	// caller (a session's standing warm cluster): no provisioning
	// happens, the cluster is left running afterwards, and CacheUSD is
	// reported as 0 because the owner attributes its node-hours.
	// Nodes/Headroom/Warm are ignored.
	Cluster *memcache.Cluster
}

// CacheResult reports a completed cache-exchanged sort.
type CacheResult struct {
	Result
	// Nodes is the cluster size used.
	Nodes int
	// Provision is the cluster spin-up time paid (zero when Warm).
	Provision time.Duration
	// CacheUSD is the cluster cost accrued by this job.
	CacheUSD float64
	// PeakCacheBytes is the high-water cache occupancy estimate
	// (the input volume; partitions are deleted as they are merged).
	PeakCacheBytes int64
	// FallbackSlabs counts intermediate partitions that flowed through
	// object storage instead of the cache because their shard node was
	// down (direct reroutes plus regenerated slabs).
	FallbackSlabs int
	// Restarts counts recovery waves run after a node loss: slab
	// regeneration passes and reduce re-runs.
	Restarts int
	// ReworkBytes is the input volume re-read to regenerate slabs a
	// failed node lost.
	ReworkBytes int64
}

// CacheProfile converts a cache node profile at a given cluster size
// into the planner's store profile, so the same Optimize searches the
// cache-exchange plan space: aggregate bandwidth and ops scale with
// nodes instead of being a service-wide constant.
func CacheProfile(cfg memcache.Config, nodes int) StoreProfile {
	if nodes < 1 {
		nodes = 1
	}
	return StoreProfile{
		RequestLatency:     cfg.RequestLatency,
		PerConnBandwidth:   cfg.PerConnBandwidth,
		AggregateBandwidth: cfg.NodeBandwidth * float64(nodes),
		ReadOpsPerSec:      cfg.NodeOpsPerSec * float64(nodes),
		WriteOpsPerSec:     cfg.NodeOpsPerSec * float64(nodes),
	}
}

// Sort runs the cache-exchanged shuffle, blocking p until the sorted
// output is in the object store. The per-job cluster is provisioned
// before and stopped after the exchange; its cost is reported in the
// result.
func (op *CacheOperator) Sort(p *des.Proc, spec CacheSpec) (CacheResult, error) {
	if err := spec.Spec.validate(); err != nil {
		return CacheResult{}, err
	}
	if spec.SampleBytes <= 0 {
		spec.SampleBytes = defaultSampleBytes
	}
	if spec.Headroom <= 0 {
		spec.Headroom = defaultCacheHeadroom
	}
	jobID := fmt.Sprintf("cacheshuffle-%04d", op.seq.Add(1))
	client := objectstore.NewClient(op.store)

	head, err := client.Head(p, spec.InputBucket, spec.InputKey)
	if err != nil {
		return CacheResult{}, fmt.Errorf("shuffle: stat input: %w", err)
	}
	size := head.Size
	if size == 0 {
		return CacheResult{}, errors.New("shuffle: empty input")
	}

	nodes := spec.Nodes
	if spec.Cluster != nil {
		if spec.Cluster.Stopped() {
			return CacheResult{}, errors.New("shuffle: caller-owned cache cluster is stopped")
		}
		nodes = spec.Cluster.Nodes()
		if size > spec.Cluster.CapacityBytes() {
			return CacheResult{}, fmt.Errorf(
				"shuffle: %d-byte exchange exceeds the standing cluster's %d-byte capacity",
				size, spec.Cluster.CapacityBytes())
		}
	} else if nodes <= 0 {
		nodes = memcache.NodesForCapacity(op.prov.Config(), size, spec.Headroom)
	}
	res := CacheResult{Nodes: nodes, PeakCacheBytes: size}
	res.TotalBytes = size

	// Decide parallelism against the cache's throughput profile.
	workers := spec.Workers
	if workers == 0 {
		plan, err := Optimize(PlanInput{
			DataBytes:      size,
			MaxWorkers:     spec.MaxWorkers,
			WorkerMemBytes: spec.WorkerMemBytes,
			PartitionBps:   spec.PartitionBps,
			MergeBps:       spec.MergeBps,
			Startup:        spec.Startup,
		}, CacheProfile(op.prov.Config(), nodes))
		if err != nil {
			return CacheResult{}, err
		}
		workers = plan.Workers
		res.Planned = plan
		res.AutoPlanned = true
	}
	res.Workers = workers

	// Provision the cluster (skipped when warm: it is already up; or
	// when the caller owns one: this job just uses it).
	provStart := p.Now()
	cluster := spec.Cluster
	owned := cluster == nil
	if owned {
		if spec.Warm {
			cluster, err = op.prov.ProvisionWarm(p, nodes)
		} else {
			cluster, err = op.prov.Provision(p, nodes)
		}
		if err != nil {
			return CacheResult{}, fmt.Errorf("shuffle: provision cache: %w", err)
		}
		defer cluster.Stop()
	}
	res.Provision = p.Now() - provStart

	// Sample for partition boundaries (real mode only).
	sampleStart := p.Now()
	boundaries, err := sampleBoundaries(p, client, spec.Spec, size, workers)
	if err != nil {
		return CacheResult{}, err
	}
	res.Sample = p.Now() - sampleStart

	// Fallback location for slabs a dead shard can't hold: the scratch
	// bucket (default: the output bucket), as in the store exchange.
	fb := spec.ScratchBucket
	if fb == "" {
		fb = spec.OutputBucket
	}

	// Phase 1: map / partition into the cache. Slabs sharded to a node
	// that dies mid-phase degrade to the store fallback per-slab.
	p1Start := p.Now()
	ranges := splitRanges(size, workers)
	mapInputs := make([]any, workers)
	for i := 0; i < workers; i++ {
		mapInputs[i] = &cacheMapTask{
			JobID:          jobID,
			InputBucket:    spec.InputBucket,
			InputKey:       spec.InputKey,
			Offset:         ranges[i].off,
			Length:         ranges[i].n,
			TotalSize:      size,
			Workers:        workers,
			MapIndex:       i,
			Boundaries:     boundaries,
			Cache:          cluster,
			PartitionBps:   spec.PartitionBps,
			ChunkBytes:     spec.StreamChunkBytes,
			Buffered:       spec.BufferedRead,
			FallbackBucket: fb,
		}
	}
	mapOuts, err := op.mapPhase(p, cacheMapFn, mapInputs, spec.Spec)
	if err != nil {
		return CacheResult{}, fmt.Errorf("shuffle: cache map phase: %w", err)
	}
	for _, o := range mapOuts {
		if n, ok := o.(int); ok {
			res.FallbackSlabs += n
		}
	}
	res.Phase1 = p.Now() - p1Start

	// Phase 2: reduce / merge out of the cache, with bounded recovery:
	// slabs lost with a dead shard (Set before the node died, no store
	// copy) are regenerated from the input into the fallback bucket,
	// and only reducers without durable output re-run.
	p2Start := p.Now()
	outKeys := make([]string, workers)
	pending := make([]int, workers)
	for i := range pending {
		pending[i] = i
	}
	const maxRecoveries = 2
	for wave := 0; ; wave++ {
		if cluster.DownNodes() > 0 {
			lost, err := op.lostSlabs(p, client, cluster, jobID, fb, workers, pending)
			if err != nil {
				return CacheResult{}, fmt.Errorf("shuffle: cache loss scan: %w", err)
			}
			if len(lost) > 0 {
				slabs, rework, err := op.regenerate(p, spec, jobID, cluster, fb, ranges, size, workers, boundaries, lost)
				if err != nil {
					return CacheResult{}, fmt.Errorf("shuffle: cache slab regen: %w", err)
				}
				res.Restarts++
				res.FallbackSlabs += slabs
				res.ReworkBytes += rework
			}
		}
		redInputs := make([]any, len(pending))
		for i, r := range pending {
			redInputs[i] = &cacheReduceTask{
				JobID:          jobID,
				Workers:        workers,
				ReduceIndex:    r,
				Cache:          cluster,
				OutputBucket:   spec.OutputBucket,
				OutputPrefix:   spec.OutputPrefix,
				MergeBps:       spec.MergeBps,
				Batched:        spec.BatchedGets,
				SliceBytes:     size / int64(workers),
				ChunkBytes:     spec.StreamChunkBytes,
				Buffered:       spec.BufferedRead,
				FallbackBucket: fb,
			}
		}
		outs, err := op.mapPhase(p, cacheReduceFn, redInputs, spec.Spec)
		if err == nil {
			for i, o := range outs {
				key, ok := o.(string)
				if !ok {
					return CacheResult{}, fmt.Errorf("shuffle: cache reduce returned %T, want string key", o)
				}
				outKeys[pending[i]] = key
			}
			break
		}
		if wave >= maxRecoveries || !isNodeLoss(err) {
			return CacheResult{}, fmt.Errorf("shuffle: cache reduce phase: %w", err)
		}
		// A shard died mid-reduce. Reducers whose output is already
		// durable are done (their keys are deterministic); the rest
		// re-run after the loss scan above regenerates what they need.
		res.Restarts++
		var still []int
		for _, r := range pending {
			key := outputKey(spec.OutputPrefix, r)
			if _, herr := client.Head(p, spec.OutputBucket, key); herr == nil {
				outKeys[r] = key
				continue
			} else if !objectstore.IsNotFound(herr) {
				return CacheResult{}, fmt.Errorf("shuffle: cache recovery scan: %w", herr)
			}
			still = append(still, r)
		}
		pending = still
		if len(pending) == 0 {
			break
		}
	}
	res.Phase2 = p.Now() - p2Start
	res.OutputKeys = outKeys
	if owned {
		cluster.Stop()
		res.CacheUSD = cluster.Cost()
	}
	return res, nil
}

// isNodeLoss reports whether err stems from a dead cache shard.
func isNodeLoss(err error) bool {
	return errors.Is(err, memcache.ErrNodeDown) || errors.Is(err, errSlabLost)
}

// lostSlabs scans the pending reducers' slab keys for ones sharded to
// a dead node with no object-storage fallback copy — data that died
// with the shard and must be regenerated. Results group lost reducer
// indexes by map index.
func (op *CacheOperator) lostSlabs(p *des.Proc, client *objectstore.Client, cluster *memcache.Cluster,
	jobID, fb string, workers int, reducers []int) (map[int][]int, error) {
	lost := make(map[int][]int)
	for m := 0; m < workers; m++ {
		for _, r := range reducers {
			if !cluster.NodeDown(cluster.NodeIndexFor(partKey(jobID, m, r))) {
				continue
			}
			if _, err := client.Head(p, fb, fallbackKey(jobID, m, r)); err != nil {
				if !objectstore.IsNotFound(err) {
					return nil, err
				}
				lost[m] = append(lost[m], r)
			}
		}
	}
	return lost, nil
}

// regenerate re-derives lost slabs by re-running the affected map
// slices in force-store mode, emitting only the lost reducer
// partitions into the fallback bucket. Deterministic boundaries make
// the regenerated slabs byte-identical to the lost ones.
func (op *CacheOperator) regenerate(p *des.Proc, spec CacheSpec, jobID string, cluster *memcache.Cluster,
	fb string, ranges []byteRange, size int64, workers int, boundaries []Boundary, lost map[int][]int) (int, int64, error) {
	var inputs []any
	var rework int64
	for m := 0; m < workers; m++ {
		rs, ok := lost[m]
		if !ok {
			continue
		}
		inputs = append(inputs, &cacheMapTask{
			JobID:          jobID,
			InputBucket:    spec.InputBucket,
			InputKey:       spec.InputKey,
			Offset:         ranges[m].off,
			Length:         ranges[m].n,
			TotalSize:      size,
			Workers:        workers,
			MapIndex:       m,
			Boundaries:     boundaries,
			Cache:          cluster,
			PartitionBps:   spec.PartitionBps,
			ChunkBytes:     spec.StreamChunkBytes,
			Buffered:       spec.BufferedRead,
			FallbackBucket: fb,
			OnlyReducers:   rs,
			ForceStore:     true,
		})
		rework += ranges[m].n
	}
	outs, err := op.mapPhase(p, cacheMapFn, inputs, spec.Spec)
	if err != nil {
		return 0, 0, err
	}
	slabs := 0
	for _, o := range outs {
		if n, ok := o.(int); ok {
			slabs += n
		}
	}
	return slabs, rework, nil
}

// mapPhase runs one wave of fn over inputs with the spec's fault
// policy, mirroring Operator.mapPhase.
func (op *CacheOperator) mapPhase(p *des.Proc, fn string, inputs []any, spec Spec) ([]any, error) {
	opts := faas.InvokeOptions{MemoryMB: spec.MemoryMB, MaxRetries: spec.MaxRetries}
	if spec.Speculate {
		outs, _, err := op.platform.MapSpeculative(p, fn, inputs, opts, spec.Speculation)
		return outs, err
	}
	return op.platform.MapSync(p, fn, inputs, opts)
}

// cacheMapTask is the input of one cache-exchange map activation.
type cacheMapTask struct {
	JobID        string
	InputBucket  string
	InputKey     string
	Offset       int64
	Length       int64
	TotalSize    int64
	Workers      int
	MapIndex     int
	Boundaries   []Boundary
	Cache        *memcache.Cluster
	PartitionBps float64
	ChunkBytes   int64
	Buffered     bool
	// FallbackBucket receives slabs whose shard node is down: the map
	// degrades per-slab to the object-storage path instead of failing.
	FallbackBucket string
	// OnlyReducers restricts emission to these reducer indexes (nil:
	// all) — the regeneration wave re-derives only lost slabs.
	OnlyReducers []int
	// ForceStore writes every emitted slab to FallbackBucket without
	// trying the cache (regeneration after a node loss).
	ForceStore bool
}

// emits reports whether the task emits reducer r's slab.
func (t *cacheMapTask) emits(r int) bool {
	if t.OnlyReducers == nil {
		return true
	}
	for _, x := range t.OnlyReducers {
		if x == r {
			return true
		}
	}
	return false
}

// fallbackKey names a slab's object-storage fallback location.
func fallbackKey(jobID string, m, r int) string {
	return "fallback/" + partKey(jobID, m, r)
}

// setSlab stores one reducer slab, degrading to the object-storage
// fallback when the shard node is down. A fully dead cluster (zone
// outage) demotes outright: the cache attempt is skipped, so the job
// runs the rest of the exchange on the object-store path. It reports
// whether the slab went to the store.
func (t *cacheMapTask) setSlab(ctx *faas.Ctx, r int, pl payload.Payload) (bool, error) {
	if !t.ForceStore && !t.Cache.Dead() {
		err := t.Cache.Set(ctx.Proc, partKey(t.JobID, t.MapIndex, r), pl)
		if err == nil {
			return false, nil
		}
		if !errors.Is(err, memcache.ErrNodeDown) || t.FallbackBucket == "" {
			return false, err
		}
	}
	if t.FallbackBucket == "" {
		return false, fmt.Errorf("shuffle: cache map %d: no fallback bucket", t.MapIndex)
	}
	if err := ctx.Store.Put(ctx.Proc, t.FallbackBucket, fallbackKey(t.JobID, t.MapIndex, r), pl); err != nil {
		return false, err
	}
	return true, nil
}

// read returns the task's input-slice geometry for the streaming path.
func (t *cacheMapTask) read() mapRead {
	return mapRead{
		Bucket: t.InputBucket, Key: t.InputKey,
		Offset: t.Offset, Length: t.Length, TotalSize: t.TotalSize,
		ChunkBytes: t.ChunkBytes, PartitionBps: t.PartitionBps,
	}
}

// cacheReduceTask is the input of one cache-exchange reduce activation.
type cacheReduceTask struct {
	JobID        string
	Workers      int
	ReduceIndex  int
	Cache        *memcache.Cluster
	OutputBucket string
	OutputPrefix string
	MergeBps     float64
	Batched      bool
	// SliceBytes is the planned per-reducer volume, sizing the adaptive
	// merge/output chunk; ChunkBytes overrides it when set.
	SliceBytes int64
	ChunkBytes int64
	// Buffered restores the pre-streaming merge + monolithic Put.
	Buffered bool
	// FallbackBucket holds slabs the map phase rerouted (or a
	// regeneration wave rebuilt) through object storage after a node
	// loss; reads fall back here per-slab.
	FallbackBucket string
}

// errSlabLost marks a slab gone from both the cache and the store
// fallback: its shard node died with the data and no regeneration has
// run yet. The operator reacts by regenerating and re-running.
var errSlabLost = errors.New("shuffle: cache slab lost")

// fetchRun retrieves mapper m's slab for this reducer, falling back to
// the object-storage copy when the shard node is down (or the key is
// gone with a replaced node). A fully dead cluster skips the cache
// attempt — the demoted job reads everything from the store.
func (t *cacheReduceTask) fetchRun(p *des.Proc, store *objectstore.Client, m int) (payload.Payload, error) {
	var err error
	if t.Cache.Dead() {
		err = memcache.ErrNodeDown
	} else {
		var pl payload.Payload
		pl, err = t.Cache.Get(p, partKey(t.JobID, m, t.ReduceIndex))
		if err == nil {
			return pl, nil
		}
		if !errors.Is(err, memcache.ErrNodeDown) && !memcache.IsNotFound(err) {
			return nil, err
		}
	}
	if t.FallbackBucket == "" {
		return nil, err
	}
	pl, serr := store.Get(p, t.FallbackBucket, fallbackKey(t.JobID, m, t.ReduceIndex))
	if serr != nil {
		if objectstore.IsNotFound(serr) {
			return nil, fmt.Errorf("%w: m%d_r%d (%v)", errSlabLost, m, t.ReduceIndex, err)
		}
		return nil, serr
	}
	return pl, nil
}

// cacheMapHandler consumes its input slice from the object store as a
// stream of chunks, partitioning as they arrive, and Sets one cache
// entry per reducer — degrading per-slab to the object-storage
// fallback when a shard node is down. Buffered tasks keep the
// pre-streaming behavior. It returns the number of slabs that took the
// fallback path.
func cacheMapHandler(ctx *faas.Ctx, input any) (any, error) {
	task, ok := input.(*cacheMapTask)
	if !ok {
		return nil, fmt.Errorf("shuffle: cache map input %T", input)
	}
	fallbacks := 0
	if task.Length == 0 {
		for r := 0; r < task.Workers; r++ {
			if !task.emits(r) {
				continue
			}
			fb, err := task.setSlab(ctx, r, payload.Real(nil))
			if err != nil {
				return nil, err
			}
			if fb {
				fallbacks++
			}
		}
		return fallbacks, nil
	}

	var (
		parts [][]byte
		sized bool
	)
	if task.Buffered {
		readOff, readLen, prefixByte := task.read().span()
		pl, err := ctx.Store.GetRange(ctx.Proc, task.InputBucket, task.InputKey, readOff, readLen)
		if err != nil {
			return nil, fmt.Errorf("shuffle: cache map %d read: %w", task.MapIndex, err)
		}
		ctx.ComputeBytes(task.Length, task.PartitionBps)
		if raw, real := pl.Bytes(); real {
			parts, err = partitionRaw(raw, prefixByte, task.Offset, task.Length, task.Workers, task.Boundaries)
			if err != nil {
				return nil, fmt.Errorf("shuffle: cache map %d: %w", task.MapIndex, err)
			}
		} else {
			sized = true
		}
	} else {
		var err error
		parts, sized, err = consumeMapStream(ctx, task.read(), task.Workers, task.Boundaries)
		if err != nil {
			return nil, fmt.Errorf("shuffle: cache map %d: %w", task.MapIndex, err)
		}
	}

	if sized {
		// Sized mode: even split of this worker's slice.
		base := task.Length / int64(task.Workers)
		rem := task.Length % int64(task.Workers)
		for r := 0; r < task.Workers; r++ {
			n := base
			if int64(r) < rem {
				n++
			}
			if !task.emits(r) {
				continue
			}
			fb, err := task.setSlab(ctx, r, payload.Sized(n))
			if err != nil {
				return nil, fmt.Errorf("shuffle: cache map %d set partition %d: %w", task.MapIndex, r, err)
			}
			if fb {
				fallbacks++
			}
		}
		return fallbacks, nil
	}
	for r := 0; r < task.Workers; r++ {
		if !task.emits(r) {
			continue
		}
		fb, err := task.setSlab(ctx, r, payload.RealNoCopy(parts[r]))
		if err != nil {
			return nil, fmt.Errorf("shuffle: cache map %d set partition %d: %w", task.MapIndex, r, err)
		}
		if fb {
			fallbacks++
		}
	}
	return fallbacks, nil
}

// cacheReduceHandler Gets its sorted run from every mapper's cache
// entries, streams a k-way merge over them, and writes one
// globally-ordered part to the object store. The cache has no chunked
// read API, so the runs arrive resident — the streaming win here is on
// the way out: merged lines flow into a multipart streaming PUT whose
// part uploads overlap the remaining merge CPU, and the runs are fed
// chunk-wise so the CPU charges interleave with those uploads.
// Consumed entries are deleted after the output write, mirroring the
// object-storage reducer's retry-safe ordering.
func cacheReduceHandler(ctx *faas.Ctx, input any) (any, error) {
	task, ok := input.(*cacheReduceTask)
	if !ok {
		return nil, fmt.Errorf("shuffle: cache reduce input %T", input)
	}
	keys := make([]string, task.Workers)
	for m := 0; m < task.Workers; m++ {
		keys[m] = partKey(task.JobID, m, task.ReduceIndex)
	}
	var parts []payload.Payload
	batched := task.Batched && !task.Cache.Dead()
	if batched {
		var err error
		parts, err = task.Cache.MGet(ctx.Proc, keys)
		if err != nil {
			if !errors.Is(err, memcache.ErrNodeDown) && !memcache.IsNotFound(err) {
				return nil, fmt.Errorf("shuffle: cache reduce %d mget: %w", task.ReduceIndex, err)
			}
			// A strict pipeline fails wholesale on a dead shard; degrade
			// to per-key fetches so the healthy shards' slabs still come
			// from the cache and only the lost ones pay the store path.
			batched = false
			parts = nil
		}
	}
	if !batched {
		switch {
		case task.Buffered:
			parts = make([]payload.Payload, len(keys))
			for m := range keys {
				pl, err := task.fetchRun(ctx.Proc, ctx.Store, m)
				if err != nil {
					return nil, fmt.Errorf("shuffle: cache reduce %d fetch m%d: %w", task.ReduceIndex, m, err)
				}
				parts[m] = pl
			}
		default:
			// The cache has no chunked-read API, so the streamed reducer's
			// transfer-in overlap comes from parallel connections instead:
			// one Get per run, concurrently, sharing node NICs fairly.
			parts = make([]payload.Payload, len(keys))
			errs := make([]error, len(keys))
			wg := des.NewWaitGroup(ctx.Proc.Sim())
			for m := range keys {
				m := m
				wg.Add(1)
				ctx.Proc.Spawn(fmt.Sprintf("cache-fetch-%d", m), func(up *des.Proc) {
					defer wg.Done()
					parts[m], errs[m] = task.fetchRun(up, ctx.Store, m)
				})
			}
			wg.Wait(ctx.Proc)
			for m, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("shuffle: cache reduce %d fetch m%d: %w", task.ReduceIndex, m, err)
				}
			}
		}
	}
	outKey := outputKey(task.OutputPrefix, task.ReduceIndex)
	if task.Buffered {
		return cacheReduceBuffered(ctx, task, outKey, keys, parts)
	}

	perRun := task.SliceBytes
	if task.Workers > 0 {
		perRun /= int64(task.Workers)
	}
	inChunk := AdaptiveChunkBytes(task.ChunkBytes, perRun)
	srcs := make([]runSource, len(parts))
	for i, pl := range parts {
		srcs[i] = &payloadSource{pl: pl, chunk: inChunk}
	}
	outPart := AdaptiveChunkBytes(task.ChunkBytes, task.SliceBytes)
	w := ctx.Store.PutStream(ctx.Proc, task.OutputBucket, outKey,
		objectstore.PutStreamOptions{PartBytes: outPart})
	var buf []byte
	emit := func(_ bed.Key, line []byte) error {
		if buf == nil {
			buf = make([]byte, 0, outPart+int64(len(line))+1)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		if int64(len(buf)) >= outPart {
			err := w.Write(ctx.Proc, payload.RealNoCopy(buf))
			buf = nil // the payload retains the buffer; start a fresh one
			return err
		}
		return nil
	}
	charge := func(n int64) { ctx.ComputeBytes(n, task.MergeBps) }
	sized, total, err := mergeStreamedRuns(ctx.Proc, srcs, charge, emit)
	if err != nil {
		w.Abort(ctx.Proc)
		return nil, fmt.Errorf("shuffle: cache reduce %d merge: %w", task.ReduceIndex, err)
	}
	if sized {
		w.Abort(ctx.Proc)
		if err := ctx.Store.Put(ctx.Proc, task.OutputBucket, outKey, payload.Sized(total)); err != nil {
			return nil, fmt.Errorf("shuffle: cache reduce %d write: %w", task.ReduceIndex, err)
		}
	} else {
		if len(buf) > 0 {
			if err := w.Write(ctx.Proc, payload.RealNoCopy(buf)); err != nil {
				w.Abort(ctx.Proc)
				return nil, fmt.Errorf("shuffle: cache reduce %d write: %w", task.ReduceIndex, err)
			}
		}
		if err := w.Close(ctx.Proc); err != nil {
			return nil, fmt.Errorf("shuffle: cache reduce %d write: %w", task.ReduceIndex, err)
		}
	}
	for m, key := range keys {
		if err := task.Cache.Delete(ctx.Proc, key); err != nil {
			// A dead shard's data is already gone; freeing it is moot.
			if errors.Is(err, memcache.ErrNodeDown) {
				continue
			}
			return nil, fmt.Errorf("shuffle: cache reduce %d free m%d: %w", task.ReduceIndex, m, err)
		}
	}
	return outKey, nil
}

// cacheReduceBuffered is the pre-streaming cache reduce body: merge
// everything, then one monolithic Put. The A/B baseline.
func cacheReduceBuffered(ctx *faas.Ctx, task *cacheReduceTask, outKey string,
	keys []string, parts []payload.Payload) (any, error) {
	var (
		runs     [][]byte
		anySized bool
		total    int64
	)
	for _, pl := range parts {
		total += pl.Size()
		if raw, real := pl.Bytes(); real {
			runs = append(runs, raw)
		} else {
			anySized = true
		}
	}
	ctx.ComputeBytes(total, task.MergeBps)

	var out payload.Payload
	if anySized {
		out = payload.Sized(total)
	} else {
		merged, err := mergeRuns(runs)
		if err != nil {
			return nil, fmt.Errorf("shuffle: cache reduce %d merge: %w", task.ReduceIndex, err)
		}
		out = payload.RealNoCopy(merged)
	}
	if err := ctx.Store.Put(ctx.Proc, task.OutputBucket, outKey, out); err != nil {
		return nil, fmt.Errorf("shuffle: cache reduce %d write: %w", task.ReduceIndex, err)
	}
	for m, key := range keys {
		if err := task.Cache.Delete(ctx.Proc, key); err != nil {
			// A dead shard's data is already gone; freeing it is moot.
			if errors.Is(err, memcache.ErrNodeDown) {
				continue
			}
			return nil, fmt.Errorf("shuffle: cache reduce %d free m%d: %w", task.ReduceIndex, m, err)
		}
	}
	return outKey, nil
}
