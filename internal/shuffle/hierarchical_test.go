package shuffle

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/cloud/payload"
	"github.com/faaspipe/faaspipe/internal/des"
	"github.com/faaspipe/faaspipe/internal/faas"
	"github.com/faaspipe/faaspipe/internal/objectstore"
)

func newHierRig(t *testing.T) *testRig {
	t.Helper()
	rig := newRig(t)
	if err := rig.op.EnableHierarchical(); err != nil {
		t.Fatalf("EnableHierarchical: %v", err)
	}
	return rig
}

func hierSpec(workers, groups int) HierSpec {
	return HierSpec{Spec: sortSpec(workers), Groups: groups}
}

func runHierSort(t *testing.T, rig *testRig, recs []bed.Record, spec HierSpec) (HierResult, []bed.Record) {
	t.Helper()
	var res HierResult
	var sorted []bed.Record
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		rig.loadInput(t, p, recs)
		res, sortErr = rig.op.SortHierarchical(p, spec)
		if sortErr != nil {
			return
		}
		sorted = rig.fetchSorted(t, p, res.OutputKeys)
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("SortHierarchical: %v", sortErr)
	}
	return res, sorted
}

func TestHierSortProducesGlobalOrder(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 6000, Seed: 41, Sorted: false})
	res, sorted := runHierSort(t, rig, recs, hierSpec(8, 4))
	if res.Workers != 8 || res.Groups != 4 {
		t.Fatalf("workers/groups = %d/%d, want 8/4", res.Workers, res.Groups)
	}
	if len(res.OutputKeys) != 8 {
		t.Fatalf("output parts = %d, want 8", len(res.OutputKeys))
	}
	if len(sorted) != len(recs) {
		t.Fatalf("sorted count = %d, want %d", len(sorted), len(recs))
	}
	if !bed.IsSorted(sorted) {
		t.Fatal("concatenated output parts are not globally sorted")
	}
}

func TestHierSortMatchesOneLevelSort(t *testing.T) {
	recs := bed.Generate(bed.GenConfig{Records: 4000, Seed: 42, Sorted: false})

	oneRig := newRig(t)
	_, oneLevel := runSort(t, oneRig, recs, sortSpec(8))

	hierRig := newHierRig(t)
	_, twoLevel := runHierSort(t, hierRig, recs, hierSpec(8, 2))

	if len(oneLevel) != len(twoLevel) {
		t.Fatalf("lengths differ: %d vs %d", len(oneLevel), len(twoLevel))
	}
	for i := range oneLevel {
		if oneLevel[i] != twoLevel[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, oneLevel[i], twoLevel[i])
		}
	}
}

func TestHierSortPreservesRecords(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 3000, Seed: 43, Sorted: false})
	_, sorted := runHierSort(t, rig, recs, hierSpec(6, 3))
	want := recordMultiset(recs)
	got := recordMultiset(sorted)
	if len(want) != len(got) {
		t.Fatalf("distinct records: got %d, want %d", len(got), len(want))
	}
	for r, n := range want {
		if got[r] != n {
			t.Fatalf("record %+v count = %d, want %d", r, got[r], n)
		}
	}
}

func TestHierSortSingleGroupDegenerate(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1500, Seed: 44, Sorted: false})
	res, sorted := runHierSort(t, rig, recs, hierSpec(4, 1))
	if res.Groups != 1 {
		t.Fatalf("groups = %d", res.Groups)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("single-group sort incorrect")
	}
}

func TestHierSortGroupsEqualWorkers(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 1500, Seed: 45, Sorted: false})
	res, sorted := runHierSort(t, rig, recs, hierSpec(4, 4))
	if res.Groups != 4 {
		t.Fatalf("groups = %d", res.Groups)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("k=1 sort incorrect")
	}
}

func TestHierSortAutoGroups(t *testing.T) {
	rig := newHierRig(t)
	recs := bed.Generate(bed.GenConfig{Records: 2000, Seed: 46, Sorted: false})
	res, sorted := runHierSort(t, rig, recs, hierSpec(16, 0))
	if res.Groups != 4 {
		t.Fatalf("auto groups for 16 workers = %d, want 4", res.Groups)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("auto-group sort incorrect")
	}
}

func TestHierSortRejectsNonDivisorGroups(t *testing.T) {
	rig := newHierRig(t)
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		_ = c.Put(p, "in", "data.bed", payload.Sized(1<<20))
		_, sortErr = rig.op.SortHierarchical(p, hierSpec(8, 3))
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr == nil {
		t.Fatal("3 groups over 8 workers accepted")
	}
}

func TestHierSortSizedPayload(t *testing.T) {
	rig := newHierRig(t)
	var res HierResult
	var sortErr error
	rig.sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(rig.store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		if err := c.Put(p, "in", "data.bed", payload.Sized(1000e6)); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		res, sortErr = rig.op.SortHierarchical(p, hierSpec(16, 4))
		if sortErr != nil {
			return
		}
		var total int64
		for _, k := range res.OutputKeys {
			obj, err := c.Head(p, "out", k)
			if err != nil {
				t.Errorf("head %s: %v", k, err)
				return
			}
			total += obj.Size
		}
		if total != 1000e6 {
			t.Errorf("output bytes = %d, want 1e9", total)
		}
	})
	if err := rig.sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("Sort: %v", sortErr)
	}
	if res.Round1 <= 0 || res.Round2 <= 0 {
		t.Fatalf("rounds not timed: %+v", res)
	}
	if len(res.OutputKeys) != 16 {
		t.Fatalf("parts = %d, want 16", len(res.OutputKeys))
	}
}

func TestAutoGroups(t *testing.T) {
	cases := map[int]int{
		1:  1,
		2:  1, // divisors 1,2; sqrt=1.41; 1 is nearest
		4:  2,
		8:  2, // divisors 1,2,4,8; sqrt=2.83; 2 vs 4 tie -> first (2)
		16: 4,
		36: 6,
		64: 8,
		7:  1, // prime
		12: 3, // sqrt=3.46; divisors 3,4: 3 is nearer
	}
	for w, want := range cases {
		if got := autoGroups(w); got != want {
			t.Errorf("autoGroups(%d) = %d, want %d", w, got, want)
		}
	}
}

// TestPropertyHierEquivalence checks the central invariant across
// random shapes: the hierarchical sort emits exactly the one-level
// sort's output for any (workers, groups) divisor pair.
func TestPropertyHierEquivalence(t *testing.T) {
	f := func(seed int64, wPick, gPick uint8) bool {
		ws := []int{2, 4, 6, 8, 12}
		w := ws[int(wPick)%len(ws)]
		var divisors []int
		for g := 1; g <= w; g++ {
			if w%g == 0 {
				divisors = append(divisors, g)
			}
		}
		g := divisors[int(gPick)%len(divisors)]
		recs := bed.Generate(bed.GenConfig{Records: 800, Seed: seed, Sorted: false})

		oneRig := newRig(t)
		_, one := runSort(t, oneRig, recs, sortSpec(w))

		hierRig := newHierRig(t)
		_, two := runHierSort(t, hierRig, recs, hierSpec(w, g))

		if len(one) != len(two) {
			return false
		}
		for i := range one {
			if one[i] != two[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPredictHierarchicalFewerRequestsAtScale(t *testing.T) {
	// At large worker counts the two-level exchange's request advantage
	// must show up in the model: two-level beats one-level for big w,
	// and loses (pays double transfer) for small w.
	in := PlanInput{DataBytes: 3500e6, MaxWorkers: 256}
	sp := StoreProfile{
		RequestLatency:     18e6, // 18ms
		PerConnBandwidth:   95e6,
		AggregateBandwidth: 40e9,
		ReadOpsPerSec:      3000,
		WriteOpsPerSec:     1500,
	}
	small1 := Predict(8, in, sp)
	small2 := PredictHierarchical(8, 2, in, sp)
	if small2.Predicted <= small1.Predicted {
		t.Errorf("two-level at w=8 (%v) should lose to one-level (%v): extra pass not modeled",
			small2.Predicted, small1.Predicted)
	}
	big1 := Predict(192, in, sp)
	big2 := PredictHierarchical(192, 12, in, sp)
	if big2.Predicted >= big1.Predicted {
		t.Errorf("two-level at w=192 (%v) should beat one-level (%v): request savings not modeled",
			big2.Predicted, big1.Predicted)
	}
}

func TestOptimizeHierarchical(t *testing.T) {
	in := PlanInput{DataBytes: 3500e6, MaxWorkers: 128}
	sp := StoreProfile{
		RequestLatency:     18e6,
		PerConnBandwidth:   95e6,
		AggregateBandwidth: 40e9,
		ReadOpsPerSec:      3000,
		WriteOpsPerSec:     1500,
	}
	plan, err := OptimizeHierarchical(in, sp)
	if err != nil {
		t.Fatalf("OptimizeHierarchical: %v", err)
	}
	if plan.Groups < 1 {
		t.Fatalf("groups = %d", plan.Groups)
	}
	if plan.OneLevel.Workers == 0 {
		t.Fatal("one-level comparison missing")
	}
	if plan.Workers%plan.Groups != 0 {
		t.Fatalf("groups %d do not divide workers %d", plan.Groups, plan.Workers)
	}
	if _, err := OptimizeHierarchical(PlanInput{DataBytes: 0}, sp); err == nil {
		t.Error("zero data accepted")
	}
}

// newFaultyPlatform builds a platform with the given injected failure
// rate, for fault-composition tests.
func newFaultyPlatform(sim *des.Sim, store *objectstore.Service, rate float64) (*faas.Platform, error) {
	return faas.New(sim, store, faas.Config{
		ColdStart:          50 * time.Millisecond,
		WarmStart:          5 * time.Millisecond,
		KeepAlive:          10 * time.Minute,
		MemoryMB:           2048,
		BaselineMemoryMB:   2048,
		ConcurrencyLimit:   500,
		BillingGranularity: 100 * time.Millisecond,
		FailureRate:        rate,
	})
}

func TestHierSortWithRetries(t *testing.T) {
	// Hierarchical shuffle composes with the fault policy: inject
	// failures and let retries recover.
	sim := des.New(5)
	store, err := objectstore.New(sim, objectstore.Config{
		RequestLatency:   0,
		PerConnBandwidth: 1e12,
		ReadOpsPerSec:    1e9,
		WriteOpsPerSec:   1e9,
		OpsBurst:         1e9,
	})
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	pf, err := newFaultyPlatform(sim, store, 0.1)
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	op, err := NewOperator(pf, store)
	if err != nil {
		t.Fatalf("operator: %v", err)
	}
	if err := op.EnableHierarchical(); err != nil {
		t.Fatalf("EnableHierarchical: %v", err)
	}
	recs := bed.Generate(bed.GenConfig{Records: 2000, Seed: 47, Sorted: false})
	var sorted []bed.Record
	var sortErr error
	sim.Spawn("driver", func(p *des.Proc) {
		c := objectstore.NewClient(store)
		_ = c.CreateBucket(p, "in")
		_ = c.CreateBucket(p, "out")
		if err := c.Put(p, "in", "data.bed", payload.RealNoCopy(bed.Marshal(recs))); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		spec := hierSpec(8, 4)
		spec.MaxRetries = 10
		var res HierResult
		res, sortErr = op.SortHierarchical(p, spec)
		if sortErr != nil {
			return
		}
		var all []bed.Record
		for _, k := range res.OutputKeys {
			pl, err := c.Get(p, "out", k)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			raw, _ := pl.Bytes()
			part, err := bed.Unmarshal(raw)
			if err != nil {
				t.Errorf("parse: %v", err)
				return
			}
			all = append(all, part...)
		}
		sorted = all
	})
	if err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if sortErr != nil {
		t.Fatalf("SortHierarchical with faults: %v", sortErr)
	}
	if !bed.IsSorted(sorted) || len(sorted) != len(recs) {
		t.Fatal("faulty hierarchical sort incorrect")
	}
	if pf.Meter().Retries == 0 {
		t.Error("no retries metered at 10% failure rate")
	}
}
