// Package faaspipe's root benchmarks regenerate every table, figure,
// and quantified claim of the paper; see EXPERIMENTS.md for the
// mapping. Latency/cost results are reported as benchmark metrics
// (virtual seconds and USD), since the simulated pipeline's wall-clock
// is the quantity the paper reports, not Go CPU time.
package faaspipe

import (
	"fmt"
	"testing"

	"github.com/faaspipe/faaspipe/internal/bed"
	"github.com/faaspipe/faaspipe/internal/calib"
	"github.com/faaspipe/faaspipe/internal/experiments"
	"github.com/faaspipe/faaspipe/internal/methcomp"
)

// BenchmarkTable1PurelyServerless regenerates the first row of
// Table 1: the METHCOMP pipeline with the all-to-all shuffle through
// object storage (paper: 83.32 s, $0.008).
func BenchmarkTable1PurelyServerless(b *testing.B) {
	benchPipeline(b, experiments.PurelyServerless)
}

// BenchmarkTable1VMSupported regenerates the second row of Table 1:
// the sort staged through a bx2-8x32 instance (paper: 142.77 s,
// $0.010).
func BenchmarkTable1VMSupported(b *testing.B) {
	benchPipeline(b, experiments.VMSupported)
}

// BenchmarkTable1AutoPlanned runs the same pipeline with the
// cost-based planner choosing the exchange strategy and its
// configuration — the row the paper argues for but never measures. Its
// virtual-s metric should track (or beat) the better hand-configured
// row above.
func BenchmarkTable1AutoPlanned(b *testing.B) {
	benchPipeline(b, experiments.AutoPlanned)
}

func benchPipeline(b *testing.B, kind experiments.StrategyKind) {
	profile := calib.Paper()
	var run experiments.PipelineRun
	for i := 0; i < b.N; i++ {
		var err error
		run, err = experiments.RunPipeline(profile, kind,
			experiments.PaperDataBytes, experiments.PaperWorkers)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.Latency.Seconds(), "virtual-s")
	b.ReportMetric(run.CostUSD, "usd")
}

// BenchmarkThreeWayExchange extends Table 1 with the cache-supported
// exchange the paper's §1 motivates (ElastiCache-style): all four
// strategies on the same pipeline at paper scale.
func BenchmarkThreeWayExchange(b *testing.B) {
	for _, kind := range []experiments.StrategyKind{
		experiments.PurelyServerless,
		experiments.VMSupported,
		experiments.CacheSupported,
		experiments.CacheSupportedWarm,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			benchPipeline(b, kind)
		})
	}
}

// BenchmarkMultiJobSession exercises the session runtime's
// amortization claim: N cache-exchanged jobs sharing one standing warm
// cluster against the same jobs in independent sessions. The shared
// total must come in under the independent one — one spin-up window
// billed instead of N.
func BenchmarkMultiJobSession(b *testing.B) {
	profile := calib.Paper()
	var res experiments.MultiJobResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.MultiJob(profile, experiments.PaperDataBytes, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SharedTotalUSD, "shared-usd")
	b.ReportMetric(res.IndependentTotalUSD, "independent-usd")
	b.ReportMetric(res.SharedTotalTime.Seconds(), "shared-virtual-s")
}

// BenchmarkShuffleWorkerSweep regenerates the worker-count sweep
// behind Figure 1 / the §2.2 claim: shuffle latency is U-shaped in
// the number of functions.
func BenchmarkShuffleWorkerSweep(b *testing.B) {
	profile := calib.Paper()
	for _, w := range []int{1, 4, 8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var res experiments.WorkerSweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.WorkerSweep(profile, experiments.PaperDataBytes, []int{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rows[0].Measured.Seconds(), "virtual-s")
			b.ReportMetric(res.Rows[0].Predicted.Seconds(), "model-s")
		})
	}
}

// BenchmarkSizeSweep regenerates the dataset-size ablation: where the
// serverless advantage goes as VM boot amortizes.
func BenchmarkSizeSweep(b *testing.B) {
	profile := calib.Paper()
	for _, size := range []int64{500e6, 3500e6, 16000e6} {
		b.Run(fmt.Sprintf("gb=%.1f", float64(size)/1e9), func(b *testing.B) {
			var res experiments.SizeSweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.SizeSweep(profile, []int64{size}, experiments.PaperWorkers)
				if err != nil {
					b.Fatal(err)
				}
			}
			row := res.Rows[0]
			b.ReportMetric(row.Serverless.Seconds(), "serverless-s")
			b.ReportMetric(row.VM.Seconds(), "vm-s")
			b.ReportMetric(row.VM.Seconds()/row.Serverless.Seconds(), "speedup")
		})
	}
}

// BenchmarkMethcompVsGzip regenerates the §2.1 claim: METHCOMP
// compresses methylation data about an order of magnitude better than
// gzip. Reported metrics are the compression ratios.
func BenchmarkMethcompVsGzip(b *testing.B) {
	recs := bed.Generate(bed.GenConfig{Records: 200000, Seed: 42, Sorted: true})
	b.Run("methcomp", func(b *testing.B) {
		raw := len(bed.Marshal(recs))
		var size int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comp, err := methcomp.Compress(recs)
			if err != nil {
				b.Fatal(err)
			}
			size = len(comp)
		}
		b.ReportMetric(float64(raw)/float64(size), "ratio")
	})
	b.Run("gzip", func(b *testing.B) {
		raw := len(bed.Marshal(recs))
		var size int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			size, err = methcomp.GzipSize(recs)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(raw)/float64(size), "ratio")
	})
}

// BenchmarkStoreOpsThrottle regenerates the §1 claim that object
// storage sustains only a few thousand operations/s regardless of
// client count.
func BenchmarkStoreOpsThrottle(b *testing.B) {
	profile := calib.Paper()
	for _, clients := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var res experiments.ThrottleResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.StoreThrottle(profile, []int{clients}, 200)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rows[0].AchievedOps, "ops/s")
		})
	}
}

// BenchmarkHierarchicalShuffle is the two-level exchange ablation:
// one-level vs hierarchical shuffle latency at the paper's parallelism
// and at a large fan-out where the request-count savings dominate.
func BenchmarkHierarchicalShuffle(b *testing.B) {
	profile := calib.Paper()
	for _, w := range []int{8, 128} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var res experiments.HierResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.HierarchySweep(profile, experiments.PaperDataBytes, []int{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rows[0].OneLevel.Seconds(), "one-level-s")
			b.ReportMetric(res.Rows[0].TwoLevel.Seconds(), "two-level-s")
		})
	}
}

// BenchmarkFaultMitigation is the fault-injection ablation: the
// shuffle's makespan under 5% container failures and 15% stragglers,
// per mitigation policy.
func BenchmarkFaultMitigation(b *testing.B) {
	profile := calib.Paper()
	for _, policy := range []experiments.FaultPolicy{
		experiments.WithRetries,
		experiments.WithRetriesAndSpeculation,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			var res experiments.FaultResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.FaultTolerance(profile,
					experiments.PaperDataBytes, experiments.PaperWorkers, []float64{0.05})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range res.Rows {
				if row.Policy == policy && row.Succeeded {
					b.ReportMetric(row.Latency.Seconds(), "virtual-s")
					b.ReportMetric(float64(row.Retries), "retries")
				}
			}
		})
	}
}

// BenchmarkChaosRecovery measures graceful degradation under the
// targeted faults of the chaos matrix: the makespan and bill of the
// spot-preempted VM leg (restarted on on-demand capacity) and the
// cache-node-loss run (slabs degraded to object storage), each as a
// slowdown over the same strategy's fault-free baseline.
func BenchmarkChaosRecovery(b *testing.B) {
	profile := calib.Paper()
	var res experiments.ChaosResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ChaosMatrix(profile, 1000e6, experiments.PaperWorkers)
		if err != nil {
			b.Fatal(err)
		}
	}
	cell := func(kind experiments.StrategyKind, sched experiments.FaultSchedule) experiments.ChaosCell {
		for _, c := range res.Rows {
			if c.Kind == kind && c.Schedule == sched {
				return c
			}
		}
		b.Fatalf("no cell %v/%v", kind, sched)
		return experiments.ChaosCell{}
	}
	vmCell := cell(experiments.VMSupported, experiments.SpotPreempt)
	cacheCell := cell(experiments.CacheSupported, experiments.CacheNodeLoss)
	b.ReportMetric(vmCell.Latency.Seconds(), "vm-preempt-s")
	b.ReportMetric(vmCell.Slowdown, "vm-preempt-slowdown")
	b.ReportMetric(vmCell.SessionUSD, "vm-preempt-usd")
	b.ReportMetric(cacheCell.Slowdown, "cache-kill-slowdown")
	b.ReportMetric(float64(cacheCell.FallbackSlabs), "fallback-slabs")
}

// BenchmarkZoneRecovery measures recovery from a correlated whole-zone
// outage: the spot VM leg reclaimed with its zone (re-provisioned in
// the survivor) and the cache run losing its entire cluster (demoted
// mid-job to the object-store path), each as a slowdown over the same
// strategy's fault-free baseline.
func BenchmarkZoneRecovery(b *testing.B) {
	profile := calib.Paper()
	var res experiments.ZoneChaosResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ZoneChaos(profile, 1000e6, experiments.PaperWorkers, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	cell := func(kind experiments.StrategyKind, fault experiments.ZoneFault) experiments.ZoneChaosCell {
		c, ok := res.Cell(kind, fault)
		if !ok {
			b.Fatalf("no cell %v/%v", kind, fault)
		}
		return c
	}
	vmCell := cell(experiments.VMSupported, experiments.ZoneOutageFault)
	cacheCell := cell(experiments.CacheSupported, experiments.ZoneOutageFault)
	b.ReportMetric(vmCell.Latency.Seconds(), "vm-outage-s")
	b.ReportMetric(vmCell.Slowdown, "vm-outage-slowdown")
	b.ReportMetric(cacheCell.Slowdown, "cache-loss-slowdown")
	b.ReportMetric(float64(cacheCell.FallbackSlabs), "fallback-slabs")
	soak := cell(experiments.PurelyServerless, experiments.PoissonSoakHigh)
	b.ReportMetric(float64(soak.Events), "soak-events")
}

// BenchmarkMemorySweep is the function-memory ablation behind the
// paper's 2 GB allocation: latency and cost per memory grant.
func BenchmarkMemorySweep(b *testing.B) {
	profile := calib.Paper()
	for _, mem := range []int{512, 2048, 4096} {
		b.Run(fmt.Sprintf("mb=%d", mem), func(b *testing.B) {
			var res experiments.MemoryResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.MemorySweep(profile,
					experiments.PaperDataBytes, experiments.PaperWorkers, []int{mem})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rows[0].Latency.Seconds(), "virtual-s")
			b.ReportMetric(res.Rows[0].CostUSD, "usd")
		})
	}
}

// BenchmarkPlannerRegret quantifies how close the on-the-fly planner
// lands to the brute-force best worker count at the paper's scale.
func BenchmarkPlannerRegret(b *testing.B) {
	profile := calib.Paper()
	var res experiments.PlannerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.PlannerRegret(profile,
			[]int64{experiments.PaperDataBytes}, []int{8, 16, 32, 48, 64, 96})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Regret*100, "regret-%")
	b.ReportMetric(float64(res.Rows[0].Planned), "planned-workers")
}

// BenchmarkPlannedVsFixedWorkers is the ablation for Primula's
// planner: the planned worker count against the paper's fixed
// parallelism of 8.
func BenchmarkPlannedVsFixedWorkers(b *testing.B) {
	profile := calib.Paper()
	for _, name := range []string{"fixed=8", "planned"} {
		b.Run(name, func(b *testing.B) {
			var run experiments.PipelineRun
			workers := 8
			if name == "planned" {
				workers = 0 // SortParams.Workers=0 engages the planner
			}
			for i := 0; i < b.N; i++ {
				var err error
				run, err = experiments.RunPipeline(profile,
					experiments.PurelyServerless, experiments.PaperDataBytes, workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(run.Latency.Seconds(), "virtual-s")
			b.ReportMetric(run.CostUSD, "usd")
		})
	}
}
